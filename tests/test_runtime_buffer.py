"""Tests for the client-side global prefetch buffer."""

import pytest

from repro.runtime import EntryState, GlobalBuffer


class TestValidation:
    def test_capacity_positive(self, sim):
        with pytest.raises(ValueError):
            GlobalBuffer(sim, 0)


class TestLifecycle:
    def test_begin_fetch_reserves_space(self, sim):
        buf = GlobalBuffer(sim, 4)
        entry = buf.begin_fetch(0, blocks=3)
        assert entry.state is EntryState.FETCHING
        assert buf.used_blocks == 3
        assert buf.free_blocks == 1

    def test_duplicate_fetch_rejected(self, sim):
        buf = GlobalBuffer(sim, 4)
        buf.begin_fetch(0, 1)
        with pytest.raises(ValueError):
            buf.begin_fetch(0, 1)

    def test_overflow_rejected(self, sim):
        buf = GlobalBuffer(sim, 2)
        buf.begin_fetch(0, 2)
        with pytest.raises(RuntimeError):
            buf.begin_fetch(1, 1)

    def test_complete_fires_ready(self, sim):
        buf = GlobalBuffer(sim, 4)
        entry = buf.begin_fetch(0, 1)
        buf.complete_fetch(0)
        sim.run()
        assert entry.state is EntryState.READY
        assert entry.ready.fired

    def test_complete_without_fetch_raises(self, sim):
        buf = GlobalBuffer(sim, 4)
        with pytest.raises(KeyError):
            buf.complete_fetch(9)

    def test_double_complete_raises(self, sim):
        buf = GlobalBuffer(sim, 4)
        buf.begin_fetch(0, 1)
        buf.complete_fetch(0)
        with pytest.raises(ValueError):
            buf.complete_fetch(0)


class TestConsumption:
    def test_hit_invalidates_entry(self, sim):
        """Paper: 'the entry is invalidated to make space for the
        subsequent data prefetched by the scheduler thread'."""
        buf = GlobalBuffer(sim, 4)
        buf.begin_fetch(0, 2)
        buf.complete_fetch(0)
        buf.consume(0)
        assert buf.used_blocks == 0
        assert buf.lookup(0) is None
        assert buf.hits == 1

    def test_consume_before_ready_raises(self, sim):
        buf = GlobalBuffer(sim, 4)
        buf.begin_fetch(0, 1)
        with pytest.raises(ValueError):
            buf.consume(0)

    def test_consume_wakes_space_waiters(self, sim):
        buf = GlobalBuffer(sim, 1)
        buf.begin_fetch(0, 1)
        woken = []

        def stalled():
            while not buf.has_room(1):
                yield buf.space_freed
            woken.append(sim.now)

        sim.process(stalled())
        sim.schedule(1.0, buf.complete_fetch, 0)
        sim.schedule(2.0, buf.consume, 0)
        sim.run()
        assert woken == [2.0]

    def test_lookup_returns_active_entry(self, sim):
        buf = GlobalBuffer(sim, 4)
        entry = buf.begin_fetch(0, 1)
        assert buf.lookup(0) is entry
        buf.complete_fetch(0)
        assert buf.lookup(0) is entry

    def test_abandon_ready_entry_frees_space_idempotently(self, sim):
        buf = GlobalBuffer(sim, 2)
        buf.begin_fetch(0, 2)
        buf.complete_fetch(0)
        buf.abandon(0)
        buf.abandon(0)
        assert buf.used_blocks == 0
        assert buf.lookup(0) is None
        assert buf.abandoned == 1

    def test_abandon_in_flight_defers_release_until_io_lands(self, sim):
        """Regression: abandoning a still-FETCHING entry used to free its
        blocks immediately (transient capacity oversubscription) and make
        the later completion callback raise ValueError."""
        buf = GlobalBuffer(sim, 2)
        buf.begin_fetch(0, 2)
        buf.abandon(0)
        # Space stays reserved while the prefetch I/O is in flight.
        assert buf.used_blocks == 2
        assert not buf.has_room(1)
        assert buf.abandoned_in_flight == 1
        assert buf.lookup(0) is None
        # The landing I/O releases the reservation instead of raising.
        buf.complete_fetch(0)
        assert buf.used_blocks == 0
        assert buf.abandoned_in_flight == 0

    def test_abandon_in_flight_wakes_space_waiters_on_landing(self, sim):
        buf = GlobalBuffer(sim, 1)
        buf.begin_fetch(0, 1)
        buf.abandon(0)
        woken = []

        def stalled():
            while not buf.has_room(1):
                yield buf.space_freed
            woken.append(sim.now)

        sim.process(stalled())
        sim.schedule(3.0, buf.complete_fetch, 0)
        sim.run()
        assert woken == [3.0]

    def test_abandon_in_flight_is_idempotent(self, sim):
        buf = GlobalBuffer(sim, 2)
        buf.begin_fetch(0, 2)
        buf.abandon(0)
        buf.abandon(0)
        assert buf.abandoned == 1
        assert buf.abandoned_in_flight == 1
        buf.complete_fetch(0)
        buf.abandon(0)  # already consumed: no-op
        assert buf.used_blocks == 0

    def test_peak_used_tracked(self, sim):
        buf = GlobalBuffer(sim, 8)
        buf.begin_fetch(0, 3)
        buf.begin_fetch(1, 4)
        buf.complete_fetch(0)
        buf.consume(0)
        assert buf.peak_used == 7

    def test_prefetch_counter(self, sim):
        buf = GlobalBuffer(sim, 8)
        buf.begin_fetch(0, 1)
        buf.begin_fetch(1, 1)
        assert buf.total_prefetches == 2
