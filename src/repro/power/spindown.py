"""Spin-down power-management policies (paper §II, Figure 2).

*Simple*: after ``timeout`` seconds of continuous idleness the disk spins
down; the next request forces a spin-up (its latency is fully exposed).

*Prediction Based*: on entering idleness, predict the idle duration from
history.  If the prediction clears the energy break-even point, spin down
immediately; also arm a wake-up timer at ``prediction − spin_up_time`` so
the disk is (ideally) back at speed when the next request lands, hiding the
spin-up latency.
"""

from __future__ import annotations

from .policy import PowerPolicy
from .predictor import IdlePredictor

__all__ = ["SimpleSpinDown", "PredictionSpinDown"]


class SimpleSpinDown(PowerPolicy):
    """Fixed-timeout spin-down (Figure 2(a)/(b))."""

    name = "simple"
    can_spin_down = True

    def __init__(self, timeout: float = 0.050):
        """``timeout`` is the paper's *x* msec idleness threshold
        (50 ms by default, per §V-A)."""
        super().__init__()
        if timeout < 0:
            raise ValueError(f"negative timeout: {timeout}")
        self.timeout = timeout

    def on_idle_start(self, now: float) -> None:
        self._arm_timer(self.timeout, self._timeout_fired)

    def _timeout_fired(self) -> None:
        self._timer = None
        if self.drive.is_idle:
            self.drive.spin_down()

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        # The drive wakes itself up when a request hits standby.


class PredictionSpinDown(PowerPolicy):
    """Predictive spin-down with ahead-of-time wake-up."""

    name = "prediction"
    can_spin_down = True

    def __init__(
        self,
        predictor: IdlePredictor | None = None,
        breakeven_margin: float = 1.0,
        min_observe: float = 0.2,
        fallback_factor: float = 0.6,
        decision_delay: float = 0.3,
    ):
        """``breakeven_margin`` scales the spec's break-even idle length;
        values above 1 make the policy more conservative.  ``min_observe``
        is the floor below which a gap is treated as service-continuation
        noise rather than an idle *period* — micro-gaps between queued
        bursts would otherwise poison the predictor.  ``fallback_factor``
        arms a safety-net timeout at that multiple of the break-even
        length: an idle period the history failed to predict (the first
        gap of a new program phase) still transitions to standby once it
        has provably outlived any possible misprediction cost.  Set to 0
        to disable the fallback (pure paper §II behaviour)."""
        super().__init__()
        self.predictor = predictor or IdlePredictor()
        if breakeven_margin <= 0:
            raise ValueError(f"breakeven_margin must be positive: {breakeven_margin}")
        if min_observe < 0:
            raise ValueError(f"min_observe must be non-negative: {min_observe}")
        if fallback_factor < 0:
            raise ValueError(f"fallback_factor must be non-negative: {fallback_factor}")
        if decision_delay < 0:
            raise ValueError(f"decision_delay must be non-negative: {decision_delay}")
        self.breakeven_margin = breakeven_margin
        self.min_observe = min_observe
        self.fallback_factor = fallback_factor
        self.decision_delay = decision_delay
        self._idle_since: float | None = None
        self.predictions = 0
        self.spin_down_decisions = 0
        self.fallback_spin_downs = 0

    def on_idle_start(self, now: float) -> None:
        self._idle_since = now
        # Detection dwell: don't brake the spindle inside a queue-drain
        # micro-gap (see HistoryBasedMultiSpeed.decision_delay).
        self._arm_timer(self.decision_delay, self._decide)

    def _decide(self) -> None:
        self._timer = None
        if not self.drive.is_idle or self.drive.is_standby:
            return
        # All timers below are relative to the *idle start*, not to this
        # (dwelled) decision point — otherwise every wake-up lands late by
        # the dwell and the error compounds across periodic idle trains.
        elapsed = self.sim.now - (self._idle_since or self.sim.now)
        predicted = self.predictor.predict()
        self.predictions += 1
        threshold = self.drive.spec.breakeven_idle_seconds() * self.breakeven_margin
        if predicted >= threshold:
            if self.drive.spin_down():
                self.spin_down_decisions += 1
                # Wake on the conservative upper estimate: waking early
                # burns the remaining standby saving at full idle power,
                # waking late costs only the usual spin-up exposure.
                wake_delay = (
                    self.predictor.predict_upper()
                    - self.drive.spec.spin_up_time
                    - elapsed
                )
                # Never wake before the spin-down itself finishes.
                wake_delay = max(wake_delay, self.drive.spec.spin_down_time)
                self._arm_timer(wake_delay, self._proactive_wake)
        elif self.fallback_factor > 0:
            fallback = (
                self.drive.spec.breakeven_idle_seconds() * self.fallback_factor
            )
            self._arm_timer(max(fallback - elapsed, 0.0), self._fallback_fired)

    def _fallback_fired(self) -> None:
        self._timer = None
        if self.drive.is_idle and not self.drive.is_standby:
            if self.drive.spin_down():
                self.fallback_spin_downs += 1
                # Unknown end: wake on request, like the simple policy.

    def _proactive_wake(self) -> None:
        self._timer = None
        if self.drive.is_standby and self.drive.is_idle:
            self.drive.spin_up()

    def _observe(self, length: float) -> None:
        if length >= self.min_observe:
            self.predictor.observe(length)

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        if self._idle_since is not None:
            self._observe(now - self._idle_since)
            self._idle_since = None

    def on_simulation_end(self, now: float) -> None:
        if self._idle_since is not None and now > self._idle_since:
            self._observe(now - self._idle_since)
            self._idle_since = None
        super().on_simulation_end(now)
