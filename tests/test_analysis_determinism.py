"""Tests for the determinism lint, the diagnostic-code registry's
collision guarantees, and the verify/lint/analyze CLI reporting contract.
"""

import io
import json
import textwrap

import pytest

from repro.analysis.determinism import (
    WAIVER_MARK,
    lint_determinism,
    lint_source,
)
from repro.analysis.diagnostics import (
    CODES,
    code_families,
    code_owner,
    register_codes,
)
from repro.cli import main


def lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), "x.py")


# ----------------------------------------------------------------------
# LINT101 — wall-clock reads
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_flagged(self):
        findings = lint("""\
            import time
            t = time.time()
            """)
        assert [d.code for d in findings] == ["LINT101"]
        assert findings[0].anchor.block == 2

    def test_aliased_import_resolved(self):
        findings = lint("""\
            import time as t
            x = t.perf_counter()
            """)
        assert [d.code for d in findings] == ["LINT101"]

    def test_from_import_resolved(self):
        findings = lint("""\
            from time import monotonic
            x = monotonic()
            """)
        assert [d.code for d in findings] == ["LINT101"]

    def test_datetime_now_flagged(self):
        findings = lint("""\
            import datetime
            stamp = datetime.datetime.now()
            """)
        assert [d.code for d in findings] == ["LINT101"]

    def test_waiver_comment_suppresses(self):
        findings = lint(f"""\
            import time
            t = time.time()  {WAIVER_MARK} measuring wall time on purpose
            """)
        assert findings == []

    def test_simulated_clock_not_flagged(self):
        findings = lint("""\
            t = sim.now()
            """)
        assert findings == []


# ----------------------------------------------------------------------
# LINT102 — unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_module_level_random_flagged(self):
        findings = lint("""\
            import random
            x = random.random()
            y = random.choice([1, 2])
            """)
        assert [d.code for d in findings] == ["LINT102", "LINT102"]

    def test_unseeded_random_instance_flagged(self):
        findings = lint("""\
            import random
            rng = random.Random()
            """)
        assert [d.code for d in findings] == ["LINT102"]

    def test_seeded_random_instance_clean(self):
        findings = lint("""\
            import random
            rng = random.Random(42)
            ok = random.seed(1)
            """)
        assert findings == []

    def test_instance_method_calls_clean(self):
        findings = lint("""\
            import random
            rng = random.Random(42)
            x = rng.random()
            """)
        assert findings == []

    def test_unseeded_default_rng_flagged(self):
        findings = lint("""\
            import numpy as np
            rng = np.random.default_rng()
            """)
        assert [d.code for d in findings] == ["LINT102"]

    def test_seeded_default_rng_clean(self):
        findings = lint("""\
            import numpy as np
            rng = np.random.default_rng(7)
            """)
        assert findings == []


# ----------------------------------------------------------------------
# LINT103 — unsorted directory listings
# ----------------------------------------------------------------------
class TestUnsortedListings:
    def test_listdir_flagged(self):
        findings = lint("""\
            import os
            names = os.listdir("/tmp")
            """)
        assert [d.code for d in findings] == ["LINT103"]

    def test_sorted_listdir_clean(self):
        findings = lint("""\
            import os
            names = sorted(os.listdir("/tmp"))
            """)
        assert findings == []

    def test_glob_module_flagged(self):
        findings = lint("""\
            import glob
            files = glob.glob("*.json")
            """)
        assert [d.code for d in findings] == ["LINT103"]

    def test_pathlib_glob_method_flagged(self):
        findings = lint("""\
            files = root.glob("*.json")
            """)
        assert [d.code for d in findings] == ["LINT103"]

    def test_sorted_pathlib_glob_clean(self):
        findings = lint("""\
            files = sorted(root.rglob("*.py"))
            """)
        assert findings == []

    def test_iterdir_in_comprehension_flagged(self):
        findings = lint("""\
            names = [p.name for p in path.iterdir()]
            """)
        assert [d.code for d in findings] == ["LINT103"]

    def test_all_findings_are_errors(self):
        from repro.analysis.diagnostics import Severity

        findings = lint("""\
            import os, time
            os.listdir(".")
            time.time()
            """)
        assert findings
        assert all(d.severity is Severity.ERROR for d in findings)


# ----------------------------------------------------------------------
# The package's own sources must be clean — the CI hard gate
# ----------------------------------------------------------------------
class TestPackageClean:
    def test_repro_package_has_no_findings(self):
        report = lint_determinism()
        assert not len(report), report.render_text(title="determinism")


# ----------------------------------------------------------------------
# Diagnostic-code registry: single source of truth, no collisions
# ----------------------------------------------------------------------
class TestCodeRegistry:
    def test_new_families_registered(self):
        families = code_families()
        for family in ("ENERGY", "OCC", "PHASE", "LINT", "SCHED",
                       "RACE", "CAP"):
            assert family in families, f"missing family {family}"
        assert families["ENERGY"] == ["ENERGY001", "ENERGY002",
                                      "ENERGY003"]
        assert families["OCC"] == ["OCC001", "OCC002"]
        assert families["PHASE"] == ["PHASE001", "PHASE002"]

    def test_ownership_is_tracked(self):
        assert code_owner("ENERGY001") == "repro.analysis.energy"
        assert code_owner("LINT101") == "repro.analysis.determinism"
        with pytest.raises(ValueError):
            code_owner("NOPE999")

    def test_reregistering_existing_code_collides(self):
        # ENERGY/OCC/PHASE/LINT cannot reuse or shadow each other's (or
        # SCHED/RACE/CAP's) codes, even with a fresh owner.
        for code in ("ENERGY001", "OCC001", "PHASE001", "LINT101",
                     "SCHED001", "RACE001", "CAP001", "LINT001"):
            assert code in CODES
            with pytest.raises(ValueError, match="collides"):
                register_codes("tests.shadow", {code: "hijack attempt"})

    def test_identical_reregistration_is_idempotent(self):
        register_codes(
            code_owner("ENERGY001"),
            {"ENERGY001": CODES["ENERGY001"]},
        )

    def test_malformed_codes_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            register_codes("tests.bad", {"lowercase1": "x"})
        with pytest.raises(ValueError, match="malformed"):
            register_codes("tests.bad", {"ENERGY1": "x"})
        with pytest.raises(ValueError, match="empty summary"):
            register_codes("tests.bad", {"ZZZ001": "  "})


# ----------------------------------------------------------------------
# CLI reporting contract: one JSON doc, uniform exit codes, --strict
# ----------------------------------------------------------------------
class TestReportingContract:
    def test_reports_exit_codes(self):
        from repro.analysis.diagnostics import (
            Diagnostic,
            Report,
            Severity,
        )
        from repro.cli import _reports_exit

        clean = Report()
        warned = Report([Diagnostic("OCC002", Severity.WARNING, "w")])
        errored = Report([Diagnostic("ENERGY001", Severity.ERROR, "e")])
        assert _reports_exit([clean], strict=False) == 0
        assert _reports_exit([clean, warned], strict=False) == 0
        assert _reports_exit([clean, warned], strict=True) == 1
        assert _reports_exit([errored], strict=False) == 1

    def test_verify_json_is_single_document(self):
        out = io.StringIO()
        rc = main(["verify", "--app", "hf", "--scale", "0.05",
                   "--format", "json"], out=out)
        assert rc == 0
        doc = json.loads(out.getvalue())
        assert doc["command"] == "verify"
        assert list(doc["sections"]) == ["hf"]
        assert doc["clean"] is True

    def test_json_alias_matches_format_json(self):
        a, b = io.StringIO(), io.StringIO()
        assert main(["lint", "--app", "hf", "--scale", "0.05",
                     "--json"], out=a) == 0
        assert main(["lint", "--app", "hf", "--scale", "0.05",
                     "--format", "json"], out=b) == 0
        assert json.loads(a.getvalue()) == json.loads(b.getvalue())

    def test_lint_determinism_section(self):
        out = io.StringIO()
        rc = main(["lint", "--app", "hf", "--scale", "0.05",
                   "--determinism", "--json"], out=out)
        assert rc == 0
        doc = json.loads(out.getvalue())
        assert list(doc["sections"]) == ["hf", "determinism"]
        assert doc["sections"]["determinism"]["clean"] is True

    def test_format_and_json_flags_conflict(self):
        with pytest.raises(SystemExit) as exc:
            main(["verify", "--app", "hf", "--json", "--format", "json"],
                 out=io.StringIO())
        assert exc.value.code == 2


class TestAnalyzeCLI:
    def test_analyze_text_table(self):
        out = io.StringIO()
        rc = main(["analyze", "--app", "hf", "--scale", "0.05",
                   "--clients", "4", "--ionodes", "4"], out=out)
        assert rc == 0
        text = out.getvalue()
        assert "energy envelopes" in text
        for policy in ("default", "simple", "history"):
            assert policy in text
        assert "ENERGY003" in text  # default policy's no-savings note

    def test_analyze_json_document(self):
        out = io.StringIO()
        rc = main(["analyze", "--app", "hf", "--policy", "simple",
                   "--scheme", "off", "--scale", "0.05",
                   "--clients", "4", "--ionodes", "4", "--json"], out=out)
        assert rc == 0
        doc = json.loads(out.getvalue())
        assert doc["command"] == "analyze"
        assert doc["checked"] is False
        (config,) = doc["configs"]
        assert config["app"] == "hf"
        assert config["policy"] == "simple"
        assert config["scheme"] is False
        env = config["envelope"]
        assert env["energy_j"]["lo"] <= env["energy_j"]["hi"]

    def test_analyze_check_cross_validates(self, tmp_path):
        out = io.StringIO()
        metrics = tmp_path / "env.json"
        rc = main(["analyze", "--app", "hf", "--policy", "default",
                   "--scheme", "off", "--scale", "0.05",
                   "--clients", "4", "--ionodes", "4", "--check",
                   "--metrics", str(metrics), "--json"], out=out)
        assert rc == 0
        doc = json.loads(out.getvalue())
        (config,) = doc["configs"]
        assert config["contained"] is True
        assert config["envelope"]["energy_j"]["lo"] <= (
            config["measured_j"]
        ) <= config["envelope"]["energy_j"]["hi"]
        snap = json.loads(metrics.read_text())
        assert snap["gauges"]["analysis.hf.default.off.contained"] == 1.0

    def test_analyze_unknown_app_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "--app", "nope"], out=io.StringIO())
        assert exc.value.code == 2
