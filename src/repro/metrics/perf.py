"""Performance metrics.

The paper's Figure 13(a)/(b) report *performance degradation* — execution
time under a power policy relative to the default scheme — and Figure
14(b) reports *performance improvement* of larger θ values relative to the
most constrained setting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PerfComparison", "degradation", "improvement"]


def degradation(exec_time: float, baseline_time: float) -> float:
    """Fractional slowdown versus the default scheme (≥ 0 usually)."""
    if baseline_time <= 0:
        raise ValueError(f"baseline time must be positive: {baseline_time}")
    return exec_time / baseline_time - 1.0


def improvement(exec_time: float, reference_time: float) -> float:
    """Fractional speedup versus a reference configuration."""
    if exec_time <= 0:
        raise ValueError(f"execution time must be positive: {exec_time}")
    return reference_time / exec_time - 1.0


@dataclass(frozen=True)
class PerfComparison:
    """One policy's execution time versus the default scheme."""

    policy: str
    exec_time: float
    baseline_time: float

    @property
    def degradation(self) -> float:
        return degradation(self.exec_time, self.baseline_time)
