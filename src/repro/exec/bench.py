"""``repro bench`` — timed execution of the figure grid.

Times the same cold grid three ways — serial in-process, parallel through
the executor, then a warm-cache replay — and writes a ``BENCH_*.json``
perf record so successive PRs have a wall-clock trajectory to compare
against.  The warm pass doubles as an end-to-end cache check: it must
perform **zero** simulations.

The parallel pass runs under the campaign supervisor in keep-going mode,
and the record carries a schema-stable ``failures`` block (count, retry/
timeout/worker-death/quarantine tallies, failed point labels — all zero/
empty on a clean run), so BENCH JSON stays comparable under partial
failure instead of the record simply not existing.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from ..experiments.config import ExperimentConfig, default_config
from ..experiments.runner import Runner
from .cache import ResultCache
from .executor import ExperimentExecutor, RunPoint, execute_point
from .grid import GRID_FIGURES, all_figure_points
from .serialize import SCHEMA_VERSION
from .supervise import CampaignSupervisor, SupervisorPolicy

__all__ = ["QUICK_FIGURES", "run_bench", "write_bench_record"]

#: Small but representative subset for CI smoke runs: baselines plus a
#: scheme compile + full policy grid for one figure.
QUICK_FIGURES = ("table3", "fig12a", "fig12b", "fig12c")


def _time_serial(points: Sequence[RunPoint], verify: bool) -> float:
    """One cold serial pass through the grid."""
    runner = Runner(points[0].config)
    start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
    for point in points:
        execute_point(runner, point, verify=verify)
    return time.perf_counter() - start  # det: wall-clock duration is the benchmark's measurement


def _measure_trace_overhead(
    points: Sequence[RunPoint], trace_path: Path, repeats: int
) -> tuple[float, float]:
    """Paired per-point measurement of lifecycle-tracing overhead.

    Returns ``(traced_seconds, overhead)``.  Machine throughput on
    shared runners drifts by 10-25% on a timescale of seconds — far more
    than the few percent being measured — so whole-pass comparisons are
    hopeless.  Instead each point is run back to back untraced and
    traced (order alternating by index so drift inside a pair cancels on
    average), both through :meth:`Runner.run_instrumented` so neither
    side touches the memo, on a runner whose compile/trace memos were
    warmed first.  The ratio of the summed halves is one estimate; the
    median over ``repeats`` estimates discards pairs that a drift edge
    split.  Verification is excluded from both halves (it is identical
    work either way), which only makes the reported ratio stricter.
    """
    from ..obs.base import Observability
    from ..obs.tracer import JsonlTracer

    runner = Runner(points[0].config)
    null_obs = Observability()
    for point in points:  # warm compile/trace memos, untimed
        runner.run_instrumented(
            point.workload, point.policy, point.scheme, null_obs,
            config=point.config,
        )
    ratios = []
    traced_seconds = []
    for _ in range(repeats):
        tracer = JsonlTracer(trace_path)  # rewrite: keep the last pass
        traced_obs = Observability(tracer=tracer)
        untraced = traced = 0.0
        try:
            for index, point in enumerate(points):
                tracer.set_context(point=point.label())
                order = ((null_obs, False), (traced_obs, True))
                if index % 2:
                    order = order[::-1]
                for obs, is_traced in order:
                    start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
                    runner.run_instrumented(
                        point.workload, point.policy, point.scheme, obs,
                        config=point.config,
                    )
                    elapsed = time.perf_counter() - start  # det: wall-clock duration is the benchmark's measurement
                    if is_traced:
                        traced += elapsed
                    else:
                        untraced += elapsed
        finally:
            tracer.close()
        if untraced > 0:
            ratios.append(traced / untraced - 1.0)
        traced_seconds.append(traced)
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2
    )
    return min(traced_seconds), median


def _envelope_widths(cfg: ExperimentConfig, workloads: Sequence[str]) -> list:
    """Static energy-envelope tightness for the benched workloads.

    Pure analysis (no simulation), so it adds milliseconds to a bench
    pass; the widths ride along in the BENCH record to give envelope
    tightness the same PR-over-PR trajectory the wall-clock numbers have.
    """
    from ..analysis.energy import CORPUS_POLICIES, analyze_energy

    runner = Runner(cfg)
    rows = []
    for app in workloads:
        trace = runner.trace(app)
        book = runner.compilation(app).book
        for policy in CORPUS_POLICIES:
            for scheme in (False, True):
                env = analyze_energy(
                    trace, cfg, policy, scheme,
                    book=book if scheme else None,
                ).envelope
                rows.append({
                    "workload": app,
                    "policy": policy,
                    "scheme": scheme,
                    "width_j": round(env.width_j, 1),
                    "relative_width": round(env.relative_width, 4),
                })
    return rows


def run_bench(
    config: Optional[ExperimentConfig] = None,
    figures: Sequence[str] = GRID_FIGURES,
    jobs: int = 4,
    verify: bool = True,
    compare_serial: bool = True,
    cache_dir: Optional[Path] = None,
    trace_path: Optional[Path] = None,
    repeats: int = 1,
) -> dict:
    """Run the grid benchmark; returns the record (not yet written).

    ``cache_dir`` is wiped of matching entries by using a fresh temporary
    directory when omitted, so the parallel pass is genuinely cold.

    With ``trace_path`` (requires ``compare_serial``), the grid is also
    re-run with lifecycle tracing on and the record gains
    ``traced_seconds`` and ``trace_overhead`` (traced ÷ untraced − 1,
    measured pairwise per point — see :func:`_measure_trace_overhead`) —
    the number the CI gate bounds.  ``repeats`` repeats both the serial
    pass (minimum kept) and the overhead measurement (median kept); the
    CI gate uses ``repeats >= 3`` to ride out noisy shared runners.
    """
    cfg = config or default_config()
    points = all_figure_points(cfg, names=figures)

    record: dict = {
        "kind": "repro-bench",
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),  # det: record timestamp, not simulated state
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "workload_scale": cfg.workload_scale,
        "figures": list(figures),
        "points": len(points),
        "jobs": jobs,
        "verify": verify,
    }

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    record["repeats"] = repeats

    envelopes = _envelope_widths(
        cfg, sorted({point.workload for point in points})
    )
    record["envelopes"] = envelopes
    if envelopes:
        record["envelope_mean_relative_width"] = round(
            sum(e["relative_width"] for e in envelopes) / len(envelopes), 4
        )

    if compare_serial:
        record["serial_seconds"] = round(
            min(_time_serial(points, verify) for _ in range(repeats)), 4
        )
        if trace_path is not None:
            traced_seconds, overhead = _measure_trace_overhead(
                points, Path(trace_path), repeats
            )
            record["traced_seconds"] = round(traced_seconds, 4)
            record["trace_overhead"] = round(overhead, 4)
            record["trace_path"] = str(trace_path)

    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = Path(tmp.name)
    try:
        cold_cache = ResultCache(Path(cache_dir))
        executor = ExperimentExecutor(
            jobs=jobs, cache=cold_cache, verify=verify
        )
        supervisor = CampaignSupervisor(
            executor, SupervisorPolicy(keep_going=True)
        )
        start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
        report = supervisor.run_points(points)
        record["parallel_seconds"] = round(time.perf_counter() - start, 4)  # det: wall-clock duration is the benchmark's measurement
        record["parallel"] = executor.stats.as_dict()
        # Schema-stable even on clean runs, so BENCH consumers can key on
        # it unconditionally; a partial failure shows up here instead of
        # truncating the record.
        record["failures"] = report.failures_block()

        warm = ExperimentExecutor(
            jobs=jobs, cache=ResultCache(Path(cache_dir)), verify=verify
        )
        start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
        warm.run_points(points)
        record["warm_seconds"] = round(time.perf_counter() - start, 4)  # det: wall-clock duration is the benchmark's measurement
        record["warm"] = warm.stats.as_dict()
    finally:
        if tmp is not None:
            tmp.cleanup()

    if compare_serial and record["parallel_seconds"] > 0:
        record["speedup"] = round(
            record["serial_seconds"] / record["parallel_seconds"], 2
        )
    return record


def write_bench_record(record: dict, out_dir: Path) -> Path:
    """Write the record as ``BENCH_<timestamp>.json``; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = record["created"].replace("-", "").replace(":", "")
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path
