"""Multi-application scenarios — the paper's stated future work (§VII).

Two or more traced programs share the same I/O nodes: their processes are
renumbered into one SPMD space and their files are prefixed into one
namespace, producing a merged :class:`AccessTrace` that the compiler and
the session driver consume exactly like a single application's.  The
interesting question the paper poses — can scheduling still lengthen idle
periods when independent applications interleave? — then runs on the
ordinary harness.
"""

from __future__ import annotations

from ..ir.profiling import AccessTrace, ProcessTrace, TracedIO
from ..ir.program import FileDecl, Program

__all__ = ["merge_traces"]


def merge_traces(traces: list[AccessTrace], name: str = "multi") -> AccessTrace:
    """Merge independently traced programs into one co-scheduled trace.

    Process ids are renumbered contiguously (program 0 first); file names
    get an ``appN:`` prefix so the namespaces cannot collide.  The merged
    trace's program has an empty body — it exists only to carry the file
    declarations and process count downstream.
    """
    if not traces:
        raise ValueError("need at least one trace to merge")

    merged_files: dict[str, FileDecl] = {}
    merged_processes: list[ProcessTrace] = []
    pid_base = 0
    for index, trace in enumerate(traces):
        prefix = f"app{index}:"
        for fname, decl in trace.program.files.items():
            merged_files[prefix + fname] = FileDecl(
                prefix + fname, decl.n_blocks, decl.block_bytes
            )
        for proc in trace.processes:
            merged_processes.append(
                ProcessTrace(
                    process=pid_base + proc.process,
                    slot_costs=list(proc.slot_costs),
                    ios=[
                        TracedIO(
                            process=pid_base + io.process,
                            slot=io.slot,
                            seq=io.seq,
                            is_write=io.is_write,
                            file=prefix + io.file,
                            block=io.block,
                            blocks=io.blocks,
                        )
                        for io in proc.ios
                    ],
                )
            )
        pid_base += trace.program.n_processes

    program = Program(
        name=name,
        n_processes=pid_base,
        files=merged_files,
        body=(),
    )
    return AccessTrace(program=program, processes=merged_processes)
