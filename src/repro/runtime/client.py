"""Application process model — one per client node.

A :class:`ClientProcess` replays its per-process trace slot by slot:
advance the local clock, issue the slot's writes, satisfy the slot's reads
(from the global prefetch buffer when the scheme is on and the access was
prefetched; synchronously from the parallel FS otherwise) and then compute
for the slot's duration.  Reads of not-yet-ready prefetches block on the
entry's ready signal — the data is in flight, issuing a second I/O would
be wasted work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.access import DataAccess
from ..ir.profiling import ProcessTrace
from ..sim.engine import Simulator
from ..sim.events import ComputePhase, Timeout
from .buffer import EntryState, GlobalBuffer
from .clock import LocalClocks
from .mpi_io import MPIIO

__all__ = ["ClientStats", "ClientProcess"]


@dataclass
class ClientStats:
    """Per-client outcome counters."""

    slots_executed: int = 0
    reads_from_buffer: int = 0
    reads_waited_on_prefetch: int = 0
    reads_synchronous: int = 0
    writes_issued: int = 0
    io_wait_time: float = 0.0
    compute_time: float = 0.0
    finish_time: float = -1.0


class ClientProcess:
    """Replays one process's trace inside the simulator."""

    def __init__(
        self,
        sim: Simulator,
        process_id: int,
        trace: ProcessTrace,
        mpi_io: MPIIO,
        clocks: LocalClocks,
        buffer: Optional[GlobalBuffer] = None,
        accesses_by_seq: Optional[dict[int, DataAccess]] = None,
        phase_runs: Optional[Sequence[tuple[int, int]]] = None,
    ):
        """``accesses_by_seq`` maps the trace's per-process I/O sequence
        numbers to their scheduled :class:`DataAccess` (present only when
        the compiler scheme is active).  ``phase_runs`` is the analytic
        kernel's certified list of I/O-free slot ranges ``[start, stop)``
        to collapse (ascending, non-overlapping); the session passes it
        only when collapsing is provably unobservable."""
        self.sim = sim
        self.process_id = process_id
        self.trace = trace
        self.mpi_io = mpi_io
        self.clocks = clocks
        self.buffer = buffer
        self.accesses_by_seq = accesses_by_seq or {}
        self.phase_runs = tuple(phase_runs or ())
        self.stats = ClientStats()
        self._tracer = sim.obs.tracer
        self._ios_by_slot: dict[int, list] = {}
        for io in trace.ios:
            self._ios_by_slot.setdefault(io.slot, []).append(io)

    # ------------------------------------------------------------------
    def run(self):
        """The simulation-process generator."""
        runs = self.phase_runs
        run_idx = 0
        n_runs = len(runs)
        n_slots = self.trace.n_slots
        costs = self.trace.slot_costs
        stats = self.stats
        slot = 0
        while slot < n_slots:
            if run_idx < n_runs and runs[run_idx][0] == slot:
                # Analytic fast path: the oracle certified [slot, stop)
                # I/O-free, so the per-slot DES would execute exactly
                # `advance; slots_executed += 1; t = t + cost` per slot,
                # with one Timeout event per positive cost.  Replay that
                # bookkeeping with the *identical* chained float
                # additions, then jump to the final time in one event.
                # With the scheme off nothing waits on the local clocks,
                # so advancing them eagerly is unobservable.
                stop = runs[run_idx][1]
                run_idx += 1
                # One clock jump stands in for the per-slot advances:
                # each intermediate tick fires a restartable signal with
                # zero waiters (no scheduler threads exist when collapse
                # is eligible), so only the final value is observable.
                self.clocks.advance(self.process_id, stop - 1)
                stats.slots_executed += stop - slot
                t = start_t = self.sim.now
                ct = stats.compute_time
                for s in range(slot, stop):
                    cost = costs[s]
                    if cost > 0:
                        # Same ops, same order, as the per-slot path:
                        # resume time is t + cost, measured delta is
                        # (t + cost) - t, accumulated one slot at a time.
                        nt = t + cost
                        ct += nt - t
                        t = nt
                stats.compute_time = ct
                if t > start_t:
                    yield ComputePhase(t, stop - slot)
                slot = stop
                continue
            self.clocks.advance(self.process_id, slot)
            stats.slots_executed += 1
            for io in self._ios_by_slot.get(slot, []):
                if io.is_write:
                    yield from self._do_write(io)
                else:
                    yield from self._do_read(io)
            cost = costs[slot]
            if cost > 0:
                before = self.sim.now
                yield Timeout(cost)
                stats.compute_time += self.sim.now - before
            slot += 1
        # Mark completion: local time passes the last slot so consumers of
        # our final writes unblock.
        self.clocks.advance(self.process_id, self.trace.n_slots)
        self.stats.finish_time = self.sim.now

    # ------------------------------------------------------------------
    def _do_write(self, io):
        started = self.sim.now
        self.stats.writes_issued += 1
        yield self.mpi_io.write(io.file, io.block, io.blocks)
        self.stats.io_wait_time += self.sim.now - started

    def _do_read(self, io):
        started = self.sim.now
        entry = None
        if self.buffer is not None:
            access = self.accesses_by_seq.get(io.seq)
            if access is not None:
                entry = self.buffer.lookup(access.aid)
        tracer = self._tracer
        if entry is None:
            # Not prefetched (scheme off, access not moved, or the
            # scheduler never got to it): synchronous read.
            self.stats.reads_synchronous += 1
            yield self.mpi_io.read(io.file, io.block, io.blocks)
            if tracer.enabled:
                tracer.event(
                    "access.consumed",
                    process=self.process_id,
                    seq=io.seq,
                    source="sync",
                    wait=self.sim.now - started,
                )
        elif entry.state is EntryState.READY:
            self.stats.reads_from_buffer += 1
            self.buffer.consume(entry.aid)
            if tracer.enabled:
                tracer.event(
                    "access.consumed",
                    process=self.process_id,
                    aid=entry.aid,
                    source="buffer",
                    wait=0.0,
                )
        else:
            # In flight: wait for the prefetch to land, then consume.
            self.stats.reads_waited_on_prefetch += 1
            yield entry.ready
            self.buffer.consume(entry.aid)
            if tracer.enabled:
                tracer.event(
                    "access.consumed",
                    process=self.process_id,
                    aid=entry.aid,
                    source="wait",
                    wait=self.sim.now - started,
                )
        self.stats.io_wait_time += self.sim.now - started
