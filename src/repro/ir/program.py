"""Loop-nest program IR.

A :class:`Program` is the compiler's view of one SPMD parallel application:
a set of striped-file declarations and a tree of loops whose bodies contain
file-block reads/writes and compute steps (the Figure 5 matrix-multiply
shape).  Every process executes the same tree with its own binding of the
process-id symbol ``p``; per-process specialization is expressed through
``p`` appearing in bounds or subscripts.

Time is counted in *slots*: every :class:`Compute` op executed advances the
process's slot counter by one (the paper's "loop iteration" granularity —
an iteration's I/O calls land in the slot of the compute step they precede).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from .affine import Affine, as_affine

__all__ = ["Read", "Write", "Compute", "Loop", "FileDecl", "Program", "Stmt"]

Bound = Union[int, Affine]


@dataclass(frozen=True)
class FileDecl:
    """A disk-resident file declared by the program.

    The file is addressed in fixed-size blocks; I/O ops name block indices.
    """

    name: str
    n_blocks: int
    block_bytes: int

    @property
    def size_bytes(self) -> int:
        return self.n_blocks * self.block_bytes

    def __post_init__(self) -> None:
        if self.n_blocks <= 0 or self.block_bytes <= 0:
            raise ValueError(f"file {self.name!r} must have positive geometry")


def _coerce_block(value):
    """Block subscripts are affine forms or callables ``env -> int``.

    Callable subscripts mark the reference non-affine: the paper's
    profiling tool handles those, the polyhedral path refuses them.
    """
    if callable(value):
        return value
    return as_affine(value)


def _eval_block(block, env: dict) -> int:
    if callable(block):
        return int(block(env))
    return block.evaluate(env)


@dataclass(frozen=True)
class Read:
    """Read one block of ``file`` (an MPI_File_read of that block).

    ``block`` is an affine form or a callable ``env -> int`` (non-affine
    subscript, e.g. indirection or modular striding).
    """

    file: str
    block: object
    blocks: int = 1  # contiguous run length, in blocks

    def __post_init__(self) -> None:
        object.__setattr__(self, "block", _coerce_block(self.block))
        if self.blocks < 1:
            raise ValueError("a Read must cover at least one block")

    def block_at(self, env: dict) -> int:
        return _eval_block(self.block, env)

    @property
    def is_affine(self) -> bool:
        return isinstance(self.block, Affine)


@dataclass(frozen=True)
class Write:
    """Write one block of ``file`` (an MPI_File_write of that block)."""

    file: str
    block: object
    blocks: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "block", _coerce_block(self.block))
        if self.blocks < 1:
            raise ValueError("a Write must cover at least one block")

    def block_at(self, env: dict) -> int:
        return _eval_block(self.block, env)

    @property
    def is_affine(self) -> bool:
        return isinstance(self.block, Affine)


@dataclass(frozen=True)
class Compute:
    """A compute step: advances the slot counter and burns ``cost`` seconds.

    ``cost`` may be a constant or a callable ``env -> seconds`` for
    data-dependent (non-affine) compute — using a callable also marks the
    program non-affine, pushing slack extraction to the profiling path.
    """

    cost: Union[float, Callable[[dict], float]]

    def cost_at(self, env: dict) -> float:
        if callable(self.cost):
            return float(self.cost(env))
        return float(self.cost)

    @property
    def is_affine(self) -> bool:
        return not callable(self.cost)


@dataclass(frozen=True)
class Loop:
    """``for index = lower, upper, step`` (inclusive bounds, Fortran style
    as in Figure 5).  Bounds may be affine in enclosing indices/params."""

    index: str
    lower: Bound
    upper: Bound
    body: tuple = ()
    step: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", as_affine(self.lower))
        object.__setattr__(self, "upper", as_affine(self.upper))
        object.__setattr__(self, "body", tuple(self.body))
        if self.step == 0:
            raise ValueError(f"loop {self.index!r} has zero step")

    def iter_range(self, env: dict) -> range:
        lo = self.lower.evaluate(env)
        hi = self.upper.evaluate(env)
        if self.step > 0:
            return range(lo, hi + 1, self.step)
        return range(lo, hi - 1, self.step)


Stmt = Union[Read, Write, Compute, Loop]


@dataclass
class Program:
    """One SPMD application: files + parameters + a statement tree."""

    name: str
    n_processes: int
    files: dict[str, FileDecl]
    body: tuple[Stmt, ...]
    params: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.body = tuple(self.body)
        if self.n_processes < 1:
            raise ValueError("need at least one process")
        self._validate(self.body, set(self.params) | {"p"})

    def _validate(self, stmts: tuple, bound_vars: set[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Loop):
                for bound in (stmt.lower, stmt.upper):
                    missing = bound.variables - bound_vars
                    if missing:
                        raise ValueError(
                            f"loop {stmt.index!r} bound uses unbound {missing}"
                        )
                self._validate(stmt.body, bound_vars | {stmt.index})
            elif isinstance(stmt, (Read, Write)):
                if stmt.file not in self.files:
                    raise ValueError(f"I/O op names undeclared file {stmt.file!r}")
                if stmt.is_affine:
                    missing = stmt.block.variables - bound_vars
                    if missing:
                        raise ValueError(
                            f"subscript on {stmt.file!r} uses unbound {missing}"
                        )
            elif not isinstance(stmt, Compute):
                raise TypeError(f"unsupported statement {stmt!r}")

    # ------------------------------------------------------------------
    @property
    def is_affine(self) -> bool:
        """True when every I/O subscript is affine — the polyhedral
        (Omega-style) slack path applies; otherwise profiling is needed.

        Compute costs are irrelevant here: dependences (and hence slacks)
        are functions of subscripts and iteration counts only, so
        data-dependent compute *times* don't disqualify a program from
        static analysis.
        """
        return all(op.is_affine for op in self.io_ops())

    def _all_computes(self, stmts: tuple):
        for stmt in stmts:
            if isinstance(stmt, Loop):
                yield from self._all_computes(stmt.body)
            elif isinstance(stmt, Compute):
                yield stmt

    def io_ops(self) -> list[Union[Read, Write]]:
        """All static I/O ops in program order."""
        out: list[Union[Read, Write]] = []

        def walk(stmts: tuple) -> None:
            for stmt in stmts:
                if isinstance(stmt, Loop):
                    walk(stmt.body)
                elif isinstance(stmt, (Read, Write)):
                    out.append(stmt)

        walk(self.body)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Program({self.name!r}, P={self.n_processes}, "
            f"files={list(self.files)})"
        )
