"""The extended scheduling algorithm (§IV-B2, Figure 10).

Accesses may span ``l ≥ 1`` slots.  Already-scheduled accesses are broken
into *unit* accesses (one per occupied slot, each carrying the original
signature) — this is exactly what :class:`ScheduleState.group` stores, so
the group signatures come for free.  For a candidate slot *t* of an access
of length *l*, the vertical reuse range widens to ``[t−δ, t+l+δ]`` with
weight 1 across the access's own span ``[t, t+l]`` and the usual decaying
σ weights outside it.
"""

from __future__ import annotations

from .access import DataAccess
from .basic import BasicScheduler, ScheduleState
from .signature import inverse_distance

__all__ = ["ExtendedScheduler"]


class ExtendedScheduler(BasicScheduler):
    """Multi-slot-length generalization of the basic algorithm.

    With every access of length 1 this reduces exactly to
    :class:`BasicScheduler` (the test suite asserts that equivalence).
    """

    def reuse_factor(
        self, access: DataAccess, slot: int, state: ScheduleState
    ) -> float:
        """R_t over the widened range [t−δ, t+l−1+δ].

        Slots inside the access's own span get weight 1; a slot k steps
        outside the span gets σ_k = 1 − k/(δ+1).  (The paper's worked
        example — length 3 at t5, δ=2 ⇒ range t3..t9, weight 1 on
        t5..t7 — fixes the span as the l slots starting at t.)
        """
        total = 0.0
        g = access.signature
        span_end = slot + access.length - 1
        for s in range(slot - self.delta, span_end + self.delta + 1):
            if s < slot:
                k = slot - s
            elif s > span_end:
                k = s - span_end
            else:
                k = 0
            total += self._weights[k] * inverse_distance(
                g, state.group_at(s), self.n_nodes
            )
        return total

    def _first_last(self, access: DataAccess) -> tuple[int, int]:
        """The access must also *fit*: its last occupied slot may not pass
        the window end (a length-l access placed at t occupies
        [t, t+l−1]).  A window shorter than the access leaves only the
        window start as a legal (overhanging) placement."""
        last_start = access.end - access.length + 1
        if last_start < access.begin:
            last_start = access.begin
        return access.begin, last_start

    def _candidate_slots(self, access: DataAccess, state: ScheduleState) -> list[int]:
        first, last_start = self._first_last(access)
        return [
            t
            for t in range(first, last_start + 1)
            if state.is_available(access, t)
        ]
