"""Kernel-interface tests: calendar queue unit behavior, heap/calendar
order equivalence (including same-timestamp ties), ComputePhase exactness
and the kernel registry."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AnalyticSimulator,
    CalendarSimulator,
    ComputePhase,
    Signal,
    Simulator,
    Timeout,
    kernel_names,
    make_kernel,
    phase_energy_bounds,
)
from repro.sim.kernels import KERNELS


class TestCalendarBasics:
    def test_orders_across_buckets(self):
        heap, cal = Simulator(), CalendarSimulator()
        for sim in (heap, cal):
            order = []
            for uid, delay in enumerate([5.0, 0.25, 63.9, 0.26, 12.5, 0.0]):
                sim.schedule(delay, order.append, (uid, delay))
            sim.run()
            assert order == sorted(order, key=lambda e: e[1])

    def test_same_time_ties_fire_in_scheduling_order(self):
        for cls in (Simulator, CalendarSimulator, AnalyticSimulator):
            sim = cls()
            order = []
            for uid in range(10):
                sim.schedule(1.0, order.append, uid)
            sim.run()
            assert order == list(range(10))

    def test_late_insert_into_current_bucket(self):
        """An event scheduled *while draining* its own bucket lands in
        sorted position behind the cursor (the insort path)."""
        sim = CalendarSimulator(width=10.0)
        order = []

        def first():
            order.append("first")
            # now=1.0; both land in the bucket being drained.
            sim.schedule(0.5, lambda: order.append("mid"))
            sim.schedule(0.1, lambda: order.append("early"))

        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: order.append("last"))
        sim.run()
        assert order == ["first", "early", "mid", "last"]

    def test_until_and_max_events_match_heap(self):
        def build(cls):
            sim = cls()
            hits = []
            for uid, delay in enumerate([0.5, 1.5, 2.5, 3.5]):
                sim.schedule(delay, hits.append, uid)
            return sim, hits

        for kwargs, expect_now in (
            ({"until": 2.0}, 2.0),        # stops between events
            ({"until": 99.0}, 99.0),      # drains, clock advances to until
            ({"max_events": 2}, 1.5),     # stops after two events
            ({"max_events": 0}, 0.0),     # runs nothing
        ):
            ref_sim, ref_hits = build(Simulator)
            ref_sim.run(**kwargs)
            cal_sim, cal_hits = build(CalendarSimulator)
            cal_sim.run(**kwargs)
            assert cal_hits == ref_hits, kwargs
            assert cal_sim.now == ref_sim.now == expect_now, kwargs

    def test_negative_delay_and_past_time_raise(self):
        sim = CalendarSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at_exact(0.5, lambda: None)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarSimulator(width=0.0)


class TestCalendarCancel:
    def test_cancel_skipped_and_pending_exact(self):
        sim = CalendarSimulator()
        hits = []
        events = [sim.schedule(float(i), hits.append, i) for i in range(10)]
        events[3].cancel()
        events[7].cancel()
        assert sim.pending_events == 8
        sim.run()
        assert hits == [0, 1, 2, 4, 5, 6, 8, 9]
        assert sim.pending_events == 0

    def test_mass_cancel_triggers_compaction(self):
        """Cancelling most of a large population compacts storage while
        keeping pending_events exact and order intact."""
        sim = CalendarSimulator()
        hits = []
        keep = [sim.schedule(float(i) + 0.5, hits.append, i)
                for i in range(0, 200, 2)]
        drop = [sim.schedule(float(i) + 0.25, hits.append, 1000 + i)
                for i in range(0, 202, 2)]  # one more than keep: strict majority
        for event in drop:
            event.cancel()
        assert sim._canceled == 0  # compaction ran (threshold is 64)
        assert sim.pending_events == len(keep)
        sim.run()
        assert hits == list(range(0, 200, 2))

    def test_cancel_during_drain(self):
        """Cancelling a later entry of the bucket currently being drained
        must not fire it."""
        sim = CalendarSimulator(width=100.0)
        hits = []
        later = sim.schedule(2.0, hits.append, "later")
        sim.schedule(1.0, lambda: later.cancel())
        sim.schedule(3.0, hits.append, "end")
        sim.run()
        assert hits == ["end"]


class TestCalendarWidthAdaptation:
    def test_sparse_schedule_widens_buckets(self):
        """Singleton drains (occupancy << 2) double the width at review
        without perturbing delivery order."""
        sim = CalendarSimulator(width=0.01)
        start = sim._width
        hits = []

        def chain(i):
            hits.append(i)
            if i < 200:
                sim.schedule(1.0, chain, i + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert hits == list(range(201))
        assert sim._width > start

    def test_rebucket_preserves_pending_entries(self):
        sim = CalendarSimulator(width=0.01)
        hits = []
        # Far-future entries cross many reviews/rebuckets before firing.
        for uid, t in enumerate([500.0, 500.0, 123.456, 700.2]):
            sim.schedule(t, hits.append, uid)

        def chain(i):
            if i < 150:
                sim.schedule(1.0, chain, i + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert hits == [2, 0, 1, 3]
        assert sim.pending_events == 0


SCRIPT = st.lists(
    st.tuples(
        # Coarse delay grid on purpose: collisions → same-timestamp ties.
        st.sampled_from([0.0, 0.1, 0.25, 0.25, 0.5, 1.0, 3.7, 64.1]),
        st.integers(min_value=0, max_value=2),   # children spawned on fire
        st.booleans(),                           # try to cancel a pending event
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(script=SCRIPT)
def test_calendar_dequeue_order_matches_heap(script):
    """Heap and calendar execute any schedule/spawn/cancel script in the
    identical order, same-timestamp ties included."""

    def run(cls):
        sim = cls()
        order = []
        pending = []   # (uid, event) not yet fired nor canceled
        fired = set()
        uids = itertools.count()

        def fire(uid, depth, spawn, do_cancel, delay):
            order.append((uid, sim.now))
            fired.add(uid)
            if do_cancel:
                # Cancel the oldest still-pending event — never one that
                # already fired (cancel-after-fire corrupts the counters
                # identically on every kernel; see the engine docstring).
                for puid, event in pending:
                    if puid not in fired and not event.canceled:
                        event.cancel()
                        break
            if depth < 2:
                for k in range(spawn):
                    child = next(uids)
                    d = delay / (3 + k)
                    event = sim.schedule(
                        d, fire, child, depth + 1, spawn, False, d
                    )
                    pending.append((child, event))

        for delay, spawn, do_cancel in script:
            uid = next(uids)
            event = sim.schedule(delay, fire, uid, 0, spawn, do_cancel, delay)
            pending.append((uid, event))
        sim.run()
        return order, sim.events_executed, sim.pending_events

    heap_out = run(Simulator)
    cal_out = run(CalendarSimulator)
    assert cal_out == heap_out


class TestComputePhase:
    def test_resume_time_is_bit_exact(self):
        """The phase resumes at the *exact* chained-sum target, matching
        what per-slot Timeouts would have produced."""
        costs = [0.1] * 7 + [0.3, 1e-3]

        def per_slot(sim):
            for c in costs:
                yield Timeout(c)

        def collapsed(sim):
            t = sim.now
            for c in costs:
                t = t + c
            yield ComputePhase(t, len(costs))

        ref = Simulator()
        ref.process(per_slot(ref))
        ref.run()
        for cls in (Simulator, CalendarSimulator, AnalyticSimulator):
            sim = cls()
            sim.process(collapsed(sim))
            sim.run()
            assert sim.now == ref.now  # bit-equal, not approx

    def test_analytic_counts_collapsed_phases(self):
        sim = AnalyticSimulator()

        def proc():
            yield ComputePhase(1.5, n_slots=3)
            yield ComputePhase(2.5, n_slots=4)

        sim.process(proc())
        sim.run()
        assert sim.phases_collapsed == 2
        assert sim.slots_collapsed == 7

    def test_heap_and_calendar_ignore_phase_counters(self):
        sim = Simulator()

        def proc():
            yield ComputePhase(1.0)

        sim.process(proc())
        sim.run()
        assert getattr(sim, "phases_collapsed", 0) == 0

    def test_n_slots_validated(self):
        with pytest.raises(ValueError):
            ComputePhase(1.0, n_slots=0)


class TestLazyWaiters:
    def test_no_list_until_first_waiter(self):
        sig = Signal("s")
        assert sig.waiter_count == 0
        assert sig._waiters is None
        hits = []
        sig.add_waiter(hits.append)
        assert sig.waiter_count == 1
        assert sig.fire("v") == [hits.append]

    def test_fire_with_no_waiters_is_empty(self):
        sig = Signal("s", restartable=True)
        assert sig.fire(None) == ()
        sig.reset()
        assert sig.fire(None) == ()


class TestKernelRegistry:
    def test_registry_names_and_classes(self):
        assert kernel_names() == ("heap", "calendar", "analytic")
        assert KERNELS["heap"] is Simulator
        assert KERNELS["calendar"] is CalendarSimulator
        assert KERNELS["analytic"] is AnalyticSimulator

    def test_make_kernel(self):
        for name in kernel_names():
            sim = make_kernel(name)
            assert sim.kernel_name == name

    def test_unknown_kernel_raises_with_available_list(self):
        with pytest.raises(ValueError, match="calendar"):
            make_kernel("splay-tree")

    def test_only_analytic_collapses(self):
        assert not Simulator.supports_phase_collapse
        assert not CalendarSimulator.supports_phase_collapse
        assert AnalyticSimulator.supports_phase_collapse


class TestPhaseEnergyBounds:
    def test_bounds_ordered_and_scale_with_duration(self):
        from repro.disk.specs import TABLE2_DISK

        lo1, hi1 = phase_energy_bounds(TABLE2_DISK, True, True, 100.0)
        lo2, hi2 = phase_energy_bounds(TABLE2_DISK, True, True, 200.0)
        assert 0 <= lo1 <= hi1
        assert lo2 == pytest.approx(2 * lo1)
        assert hi2 > hi1
