"""Tests for the ablation knobs: processing order, σ-weight shape, and
FIFO arm scheduling."""

import pytest

from repro.core import BasicScheduler, DataAccess, make_scheduler
from repro.core.signature import signature_from_nodes
from repro.disk import DiskRequest, Drive

from conftest import drain, fast_spec


def access(aid, process, begin, end, sig):
    return DataAccess(
        aid=aid, process=process, original_slot=end, begin=begin, end=end,
        signature=sig,
    )


class TestOrderKnob:
    def test_validation(self):
        with pytest.raises(ValueError):
            BasicScheduler(4, order="reverse-polish")

    def test_shortest_processes_constrained_first(self):
        sched = BasicScheduler(4, order="shortest")
        tight = access(5, 0, 3, 4, 0b1)
        loose = access(1, 1, 0, 9, 0b1)
        assert sched._ordered([loose, tight]) == [tight, loose]

    def test_longest_reverses(self):
        sched = BasicScheduler(4, order="longest")
        tight = access(5, 0, 3, 4, 0b1)
        loose = access(1, 1, 0, 9, 0b1)
        assert sched._ordered([loose, tight]) == [loose, tight]

    def test_program_order_by_aid(self):
        sched = BasicScheduler(4, order="program")
        a = access(2, 0, 0, 9, 0b1)
        b = access(1, 1, 3, 4, 0b1)
        assert sched._ordered([a, b]) == [b, a]

    def test_order_flows_through_factory(self):
        sched = make_scheduler(4, order="longest")
        assert sched.base.order == "longest"

    def test_all_orders_produce_valid_schedules(self):
        for order in ("shortest", "longest", "program"):
            sched = make_scheduler(8, delta=4, theta=2, seed=0, order=order)
            accesses = [
                access(i, i % 3, 2, 10 + i, signature_from_nodes([i % 8], 8))
                for i in range(12)
            ]
            sched.schedule(accesses)
            for a in accesses:
                assert a.scheduled_slot is not None
                assert a.scheduled_slot >= 2 or a.scheduled_slot == a.original_slot


class TestWeightShapeKnob:
    def test_validation(self):
        with pytest.raises(ValueError):
            BasicScheduler(4, weight_shape="gaussian")

    def test_uniform_weights_flat(self):
        sched = BasicScheduler(4, delta=3, weight_shape="uniform")
        assert sched._weights == [1.0, 1.0, 1.0, 1.0]

    def test_linear_weights_decay(self):
        sched = BasicScheduler(4, delta=3, weight_shape="linear")
        assert sched._weights == sorted(sched._weights, reverse=True)
        assert sched._weights[0] == 1.0

    def test_uniform_raises_neighbour_contribution(self):
        from repro.core.basic import ScheduleState

        state = ScheduleState(n_nodes=4)
        state.group[5] = 0b1  # a neighbour slot with matching signature
        a = access(0, 0, 0, 10, 0b1)
        linear = BasicScheduler(4, delta=3, weight_shape="linear")
        uniform = BasicScheduler(4, delta=3, weight_shape="uniform")
        # Scoring slot 3 (two away from the seeded slot 5): uniform weighs
        # the neighbour fully, linear decays it.
        assert uniform.reuse_factor(a, 3, state) > linear.reuse_factor(
            a, 3, state
        )


class TestArmScheduling:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Drive(sim, fast_spec(), arm_scheduling="sstf")

    def test_fifo_serves_in_arrival_order(self, sim):
        drive = Drive(sim, fast_spec(), arm_scheduling="fifo")
        order = []
        cap = drive.spec.capacity_bytes
        drive.submit(DiskRequest(lba=0, nbytes=2**26))  # pin the head
        for name, lba in (("far", cap - 2**21), ("near", 2**21)):
            drive.submit(DiskRequest(
                lba=lba, nbytes=4096,
                on_complete=lambda r, n=name: order.append(n)))
        drain(sim, drive)
        assert order == ["far", "near"]

    def test_elevator_beats_fifo_on_scattered_load(self, sim):
        import random

        def mean_response(policy):
            from repro.sim import Simulator

            local = Simulator()
            drive = Drive(local, fast_spec(), arm_scheduling=policy)
            rng = random.Random(1)
            for i in range(32):
                local.schedule_at(0.0, drive.submit, DiskRequest(
                    lba=rng.randrange(0, drive.spec.capacity_bytes),
                    nbytes=4096))
            local.run()
            drive.finalize()
            return drive.stats.mean_response_time

        assert mean_response("elevator") <= mean_response("fifo")
