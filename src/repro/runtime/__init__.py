"""Runtime data access scheduler (§III): clients, scheduler threads,
global buffer, MPI-IO facade, local-time coordination, session driver.
"""

from .buffer import BufferEntry, EntryState, GlobalBuffer
from .client import ClientProcess, ClientStats
from .clock import LocalClocks
from .mpi_io import IOStats, MPIIO
from .reorder import StragglerAwareReorderer
from .scheduler_thread import (
    SchedulerThread,
    SchedulerThreadStats,
    issue_window,
    will_prefetch,
)
from .session import Session, SessionConfig, SessionResult

__all__ = [
    "Session",
    "SessionConfig",
    "SessionResult",
    "ClientProcess",
    "ClientStats",
    "SchedulerThread",
    "SchedulerThreadStats",
    "StragglerAwareReorderer",
    "issue_window",
    "will_prefetch",
    "GlobalBuffer",
    "BufferEntry",
    "EntryState",
    "LocalClocks",
    "MPIIO",
    "IOStats",
]
