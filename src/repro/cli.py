"""Command-line interface.

Thirteen subcommands:

* ``list`` — the registered workloads and policies;
* ``run`` — simulate one (workload, policy, scheme) combination and print
  the measured energy, performance and idle statistics;
* ``figure`` — regenerate one table/figure of the paper's evaluation;
* ``resume`` — re-dispatch an interrupted ``run``/``figure`` campaign
  from its ``--journal`` file; finished points return as cache hits, so
  the merged output is bit-identical to an uninterrupted run;
* ``bench`` — time the figure grid (serial vs parallel vs warm cache) and
  write a ``BENCH_*.json`` perf record; with ``--trace`` it also times a
  traced pass and ``--max-trace-overhead`` gates the slowdown; the record
  carries per-point kernel throughput (events/sec) and a fixed kernel
  shootout racing every simulation kernel on the ``sweep`` workload
  (bit-identity asserted), it is diffed against the latest prior record
  in ``--output-dir`` (a missing trajectory only warns), and
  ``--profile [N]`` prints a cProfile top-N table per grid point;
* ``report`` — render a metrics snapshot produced by ``--metrics`` as
  grouped tables (or JSON), optionally merging several snapshots;
* ``schedule`` — compile a workload's I/O schedule and print its stats
  (and, with ``--timeline``, an ASCII view of the per-node access
  density before and after scheduling);
* ``verify`` — compile a workload's schedule and statically verify it
  (slack windows, producer ordering, deadlocks, buffer capacity) without
  running the simulator; exits non-zero on error diagnostics;
* ``lint`` — static IR lint of a workload's trace (dead writes,
  never-accessed files), no schedule needed; ``--determinism`` adds the
  AST determinism pass over the package's own sources (wall-clock reads,
  unseeded randomness, unsorted directory listings);
* ``analyze`` — abstract-interpretation energy bounds: certified
  [lower, upper] energy envelopes, per-node residency intervals and
  occupancy/idle-gap diagnostics per configuration, all without
  simulating; ``--check`` additionally runs the DES and fails if any
  measured energy escapes its envelope (the CI soundness gate);
* ``tournament`` — run the online energy-policy tournament: the static
  compiler entrants vs the adaptive policies of ``repro.power.online``
  across every workload × {clean, straggler, degraded-RAID5} scenario,
  writing a deterministic ``TOURNAMENT_*.json`` leaderboard (energy,
  slowdown, strict-energy win matrix) with the static analyzer's
  envelope containment checked per cell; exits non-zero if any measured
  energy escapes its certified envelope;
* ``serve`` — run the persistent scheduling service: JSON-over-HTTP
  submission of experiment points and grids into a bounded work queue
  backed by the supervisor/executor/cache stack, with per-tenant cache
  namespaces, coalescing of identical in-flight submissions, 429 +
  ``Retry-After`` backpressure, and graceful drain on SIGTERM/SIGINT;
* ``loadtest`` — drive the synthetic load harness at a scheduling
  server (``--url``, or an in-process one on an ephemeral port when
  omitted): N concurrent keep-alive clients over a mixed workload,
  reporting requests/sec, p50/p99 latency, cache hit rate and coalesced
  submissions; exits non-zero on any failed request or a blown
  ``--p99-budget``.

``verify``, ``lint`` and ``analyze`` share one reporting contract so CI
gates consume them uniformly: ``--format {text,json}`` (``--json`` is an
alias), a *single* JSON document even when several workloads are
covered, ``--strict`` promotes warnings to failures, and exit codes mean
0 = clean, 1 = findings (errors, or warnings under ``--strict``),
2 = usage/environment error.

``run`` and ``figure`` go through the parallel executor: ``--jobs N``
fans simulations out over N worker processes, and every finished point is
persisted in a content-addressed cache (``--cache-dir``, default
``$REPRO_CACHE_DIR`` or ``.repro-cache``; disable with ``--no-cache``) so
repeat invocations skip simulation entirely.  Both also take ``--trace
PATH`` (JSONL span trace of every simulated point; forces serial) and
``--metrics PATH`` (merged metrics snapshot; per-point files are merged
deterministically, so parallel workers are fine).

Both simulate under the campaign supervisor: ``--retries N`` retries a
crashed point with deterministic seeded backoff, ``--timeout SEC`` arms
a per-point watchdog (the hung worker's pool is respawned), worker
deaths recover via pool respawn + quarantine, ``--keep-going`` collects
every failure instead of aborting on the first, and ``--journal PATH``
checkpoints each point's outcome so ``repro resume PATH`` can continue
after a SIGINT or crash.

Examples::

    python -m repro list
    python -m repro run --app sar --policy history --scheme --scale 0.1
    python -m repro run --app sweep --policy simple --kernel analytic
    python -m repro run --app sar --policy simple --scheme \\
        --trace out.jsonl --metrics out.json
    python -m repro report out.json --filter 'drive.*'
    python -m repro figure fig12c --scale 0.1 --jobs 4
    python -m repro figure fig12c --scale 0.1 --jobs 4 \\
        --retries 2 --timeout 300 --journal fig12c.journal
    python -m repro resume fig12c.journal
    python -m repro bench --quick --jobs 4
    python -m repro tournament --scale 0.05 --jobs 4
    python -m repro tournament --workloads sar,hf --entrants hybrid,forecast
    python -m repro bench --quick --trace trace.jsonl --max-trace-overhead 0.05
    python -m repro bench --quick --kernel calendar --profile 8
    python -m repro schedule --app hf --scale 0.1 --timeline
    python -m repro verify --scale 0.1           # all six workloads
    python -m repro verify --app madbench2 --json
    python -m repro lint --app astro
    python -m repro lint --determinism --strict
    python -m repro analyze --app hf --scale 0.1
    python -m repro analyze --check --scale 0.05 --format json
    python -m repro serve --port 8177 --scale 0.1
    python -m repro loadtest --clients 32 --requests 4 --scale 0.05
    python -m repro loadtest --url http://127.0.0.1:8177 --clients 32
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments import (
    APPS,
    ONLINE_POLICIES,
    POLICIES,
    Runner,
    default_config,
    cache_sensitivity,
    fig12a,
    fig12b,
    fig12c,
    fig12d,
    fig13a,
    fig13b,
    fig13c,
    fig13d,
    fig14a,
    fig14b,
    table2_rows,
    table3,
)
from .metrics import format_percent, format_table
from .sim.kernels import DEFAULT_KERNEL, kernel_names
from .workloads import all_workloads

__all__ = ["main"]

#: Every registered workload — the paper's six (APPS) plus extras like
#: ``sweep``; ``--app`` accepts any of them, while the all-apps defaults
#: of verify/lint/analyze stay pinned to the paper corpus.
WORKLOAD_CHOICES = tuple(w.name for w in all_workloads())

FIGURES = {
    "table2": lambda runner: table2_rows(runner.config),
    "table3": table3,
    "fig12a": fig12a,
    "fig12b": fig12b,
    "fig12c": fig12c,
    "fig12d": fig12d,
    "fig13a": fig13a,
    "fig13b": fig13b,
    "fig13c": fig13c,
    "fig13d": fig13d,
    "fig14a": fig14a,
    "fig14b": fig14b,
    "cache": cache_sensitivity,
}


def _add_exec_flags(sub_parser: argparse.ArgumentParser) -> None:
    """Executor knobs shared by the simulating subcommands."""
    sub_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the run grid (default: 1 = in-process)")
    sub_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "./.repro-cache)")
    sub_parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache")
    sub_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-point watchdog: a point still running after SEC seconds "
        "has its worker pool respawned and is retried")
    sub_parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra attempts for a crashed/timed-out point, with "
        "deterministic seeded backoff (default: 1)")
    group = sub_parser.add_mutually_exclusive_group()
    group.add_argument(
        "--keep-going", action="store_true",
        help="collect every point failure and finish the rest of the "
        "campaign instead of aborting on the first")
    group.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first point failure (the default; completed "
        "siblings' results are still cached)")
    sub_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append each point's outcome to a JSONL campaign journal; "
        "continue an interrupted campaign with 'repro resume PATH'")


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    """Observability outputs shared by the simulating subcommands."""
    sub_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL span trace of every simulated point "
        "(forces serial execution)")
    sub_parser.add_argument(
        "--trace-detail", action="store_true",
        help="with --trace: also record every MPI-IO call, disk request, "
        "network transfer and I/O-node op (roughly 20x more records)")
    sub_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a merged metrics snapshot (JSON) of every simulated "
        "point; inspect with 'repro report'")


def _add_report_flags(sub_parser: argparse.ArgumentParser) -> None:
    """The uniform reporting contract of verify/lint/analyze."""
    group = sub_parser.add_mutually_exclusive_group()
    group.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text); JSON is always one document")
    group.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json")
    sub_parser.add_argument(
        "--strict", action="store_true",
        help="treat warning diagnostics as failures (exit 1)")


def _resolved_format(args) -> str:
    return "json" if getattr(args, "json", False) else args.format


def _reports_exit(reports, strict: bool) -> int:
    """0 = clean, 1 = errors (or warnings under --strict)."""
    return 1 if any(
        r.has_errors or (strict and r.has_warnings) for r in reports
    ) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software-directed data access scheduling (ICDCS 2012) "
        "— reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and policies")

    run_p = sub.add_parser("run", help="simulate one configuration")
    run_p.add_argument("--app", required=True, choices=WORKLOAD_CHOICES)
    run_p.add_argument(
        "--policy", default="default",
        choices=("default",) + POLICIES + ONLINE_POLICIES,
    )
    run_p.add_argument("--scheme", action="store_true",
                       help="enable the compiler-directed scheduling")
    run_p.add_argument("--reorder", action="store_true",
                       help="straggler-aware reordering of each scheduler "
                       "issue window (needs --scheme to have any effect)")
    run_p.add_argument("--scale", type=float, default=None,
                       help="workload scale (default: REPRO_SCALE or 0.25)")
    run_p.add_argument("--kernel", default=None, choices=kernel_names(),
                       help="simulation kernel (default: "
                       f"{DEFAULT_KERNEL}); results are bit-identical "
                       "across kernels, only speed differs")
    run_p.add_argument("--clients", type=int, default=None)
    run_p.add_argument("--ionodes", type=int, default=None)
    run_p.add_argument("--delta", type=int, default=None)
    run_p.add_argument("--theta", type=int, default=None)
    run_p.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="inject the given fault plan (JSON, see "
                       "repro.faults); fault counters land in --metrics")
    _add_exec_flags(run_p)
    _add_obs_flags(run_p)

    fig_p = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig_p.add_argument("name", choices=sorted(FIGURES))
    fig_p.add_argument("--scale", type=float, default=None)
    fig_p.add_argument("--kernel", default=None, choices=kernel_names(),
                       help="simulation kernel for every grid point "
                       f"(default: {DEFAULT_KERNEL}; the figure output "
                       "is identical either way)")
    fig_p.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="inject the given fault plan into every grid "
                       "point of the figure")
    _add_exec_flags(fig_p)
    _add_obs_flags(fig_p)

    resume_p = sub.add_parser(
        "resume",
        help="continue an interrupted campaign from its --journal file",
    )
    resume_p.add_argument("journal", metavar="JOURNAL",
                          help="journal written by run/figure --journal")
    resume_p.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="override the journaled worker count")

    bench_p = sub.add_parser(
        "bench", help="time the figure grid and write a BENCH_*.json record"
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="small grid at scale 0.05 (CI smoke)")
    bench_p.add_argument("--jobs", type=int, default=4, metavar="N",
                         help="worker processes for the parallel pass")
    bench_p.add_argument("--scale", type=float, default=None)
    bench_p.add_argument("--kernel", default=None, choices=kernel_names(),
                         help="simulation kernel the grid passes run "
                         f"under (default: {DEFAULT_KERNEL}); the kernel "
                         "shootout always races all of them")
    bench_p.add_argument("--profile", type=int, nargs="?", const=12,
                         default=None, metavar="N",
                         help="also cProfile each grid point serially and "
                         "print the top N functions by tottime "
                         "(default N: 12)")
    bench_p.add_argument("--no-shootout", action="store_true",
                         help="skip the fixed-scale kernel shootout "
                         "(sweep workload, all kernels)")
    bench_p.add_argument("--figures", nargs="*", default=None,
                         metavar="FIG", help="subset of figures to grid")
    bench_p.add_argument("--output-dir", default=".", metavar="DIR",
                         help="where to write BENCH_<stamp>.json")
    bench_p.add_argument("--no-serial", action="store_true",
                         help="skip the serial baseline pass")
    bench_p.add_argument("--trace", default=None, metavar="PATH",
                         help="also time a traced serial pass writing a "
                         "JSONL trace to PATH (needs the serial baseline)")
    bench_p.add_argument("--repeats", type=int, default=1, metavar="N",
                         help="time each serial pass N times and keep the "
                         "minimum (interleaved, for stable overhead "
                         "ratios on noisy machines)")
    bench_p.add_argument("--max-trace-overhead", type=float, default=None,
                         metavar="FRAC",
                         help="exit non-zero if the traced pass is more "
                         "than FRAC slower than the untraced one "
                         "(e.g. 0.05 = 5%%)")
    bench_p.add_argument("--no-server", action="store_true",
                         help="skip the serving-throughput block (an "
                         "in-process load-test of the scheduling service)")
    bench_p.add_argument("--no-tournament", action="store_true",
                         help="skip the reduced policy-tournament block")

    tour_p = sub.add_parser(
        "tournament",
        help="race static vs online power policies across fault scenarios",
    )
    tour_p.add_argument("--scale", type=float, default=None,
                        help="workload scale (default: REPRO_SCALE or 0.25)")
    tour_p.add_argument("--kernel", default=None, choices=kernel_names(),
                        help="simulation kernel for every cell "
                        f"(default: {DEFAULT_KERNEL})")
    tour_p.add_argument("--workloads", default=None, metavar="A,B,...",
                        help="comma-separated workloads "
                        "(default: every registered workload)")
    tour_p.add_argument("--entrants", default=None, metavar="E,F,...",
                        help="comma-separated entrant names "
                        "(default: the full field; see repro list)")
    tour_p.add_argument("--scenarios", default=None, metavar="S,T,...",
                        help="comma-separated scenarios out of "
                        "clean,straggler,degraded (default: all three)")
    tour_p.add_argument("--output-dir", default=".", metavar="DIR",
                        help="where to write TOURNAMENT_<stamp>.json")
    tour_p.add_argument("--no-record", action="store_true",
                        help="print the leaderboard without writing a "
                        "TOURNAMENT_*.json record")
    tour_p.add_argument("--json", action="store_true",
                        help="emit the full tournament document as JSON")
    _add_exec_flags(tour_p)

    serve_p = sub.add_parser(
        "serve", help="run the persistent scheduling service (JSON/HTTP)"
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8177,
                         help="TCP port (default: 8177; 0 = ephemeral)")
    serve_p.add_argument("--scale", type=float, default=None,
                         help="base workload scale submissions override "
                         "(default: REPRO_SCALE or 0.25)")
    serve_p.add_argument("--kernel", default=None, choices=kernel_names(),
                         help="base simulation kernel (default: "
                         f"{DEFAULT_KERNEL})")
    serve_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes per batch (default: 1 = "
                         "in-process)")
    serve_p.add_argument("--workers", type=int, default=2, metavar="N",
                         help="concurrent batch workers (default: 2)")
    serve_p.add_argument("--queue-limit", type=int, default=256, metavar="N",
                         help="bounded work-queue depth; submissions beyond "
                         "it get 429 + Retry-After (default: 256)")
    serve_p.add_argument("--retries", type=int, default=1, metavar="N",
                         help="extra attempts per failed point (default: 1)")
    serve_p.add_argument("--no-verify", action="store_true",
                         help="skip static schedule verification of scheme "
                         "submissions")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result cache root; tenants live in "
                         "DIR/<tenant> (default: $REPRO_CACHE_DIR or "
                         "./.repro-cache)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="serve without a result cache (every "
                         "submission simulates)")
    serve_p.add_argument("--wal", default=None, metavar="WAL.jsonl",
                         help="admission write-ahead log: every accepted "
                         "submission is fsynced here before its 202")
    serve_p.add_argument("--recover", default=None, metavar="WAL.jsonl",
                         help="replay WAL.jsonl on start (re-enqueue "
                         "accepted-but-unfinished jobs), then keep "
                         "journaling to it; implies --wal WAL.jsonl")
    serve_p.add_argument("--chaos", default=None, metavar="PLAN.json",
                         help="fault plan whose server.* events sabotage "
                         "the serving path deterministically (counters: "
                         "server.chaos.*)")
    serve_p.add_argument("--idle-timeout", type=float, default=30.0,
                         metavar="SEC",
                         help="server-side cap on long-polls and idle "
                         "event streams (default: 30)")

    load_p = sub.add_parser(
        "loadtest", help="drive the synthetic load harness at a server"
    )
    load_p.add_argument("--url", default=None, metavar="URL",
                        help="target server, e.g. http://127.0.0.1:8177 "
                        "(default: spin one up in-process on an ephemeral "
                        "port with a temporary cache)")
    load_p.add_argument("--clients", type=int, default=32, metavar="N",
                        help="concurrent clients, one keep-alive "
                        "connection each (default: 32)")
    load_p.add_argument("--requests", type=int, default=4, metavar="N",
                        help="requests per client (default: 4)")
    load_p.add_argument("--apps", default="sar,hf", metavar="A,B,...",
                        help="comma-separated workload mix "
                        "(default: sar,hf)")
    load_p.add_argument("--policy", default="simple",
                        choices=("default",) + POLICIES,
                        help="power policy of every mix point "
                        "(default: simple)")
    load_p.add_argument("--schemes", choices=("off", "on", "both"),
                        default="both",
                        help="scheme variants in the mix (default: both)")
    load_p.add_argument("--tenant", default="default",
                        help="tenant namespace to submit under")
    load_p.add_argument("--scale", type=float, default=None,
                        help="workload scale of the in-process server "
                        "(ignored with --url)")
    load_p.add_argument("--no-warm", action="store_true",
                        help="skip the cache-warming phase (the burst "
                        "then measures simulation, not serving)")
    load_p.add_argument("--p99-budget", type=float, default=None,
                        metavar="SEC",
                        help="exit non-zero if p99 latency exceeds SEC "
                        "seconds")
    load_p.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")

    report_p = sub.add_parser(
        "report", help="render a metrics snapshot written by --metrics"
    )
    report_p.add_argument("paths", nargs="+", metavar="SNAPSHOT",
                          help="snapshot file(s); several are merged")
    report_p.add_argument("--json", action="store_true",
                          help="emit the (merged) snapshot as JSON")
    report_p.add_argument("--filter", default=None, metavar="GLOB",
                          help="only metrics matching this fnmatch pattern "
                          "(e.g. 'drive.*' or '*.energy.*')")

    sched_p = sub.add_parser("schedule", help="compile and inspect a schedule")
    sched_p.add_argument("--app", required=True, choices=WORKLOAD_CHOICES)
    sched_p.add_argument("--scale", type=float, default=None)
    sched_p.add_argument("--timeline", action="store_true",
                         help="print per-node I/O density before/after")
    sched_p.add_argument("--width", type=int, default=72,
                         help="timeline width in columns")

    verify_p = sub.add_parser(
        "verify", help="statically verify a compiled schedule (no simulation)"
    )
    verify_p.add_argument("--app", default=None, choices=WORKLOAD_CHOICES,
                          help="workload to verify (default: all)")
    verify_p.add_argument("--scale", type=float, default=None)
    verify_p.add_argument("--clients", type=int, default=None)
    verify_p.add_argument("--ionodes", type=int, default=None)
    verify_p.add_argument("--delta", type=int, default=None)
    verify_p.add_argument("--theta", type=int, default=None)
    verify_p.add_argument("--no-lint", action="store_true",
                          help="skip the IR lint pass")
    _add_report_flags(verify_p)

    lint_p = sub.add_parser("lint", help="lint a workload's IR trace")
    lint_p.add_argument("--app", default=None, choices=WORKLOAD_CHOICES,
                        help="workload to lint (default: all)")
    lint_p.add_argument("--scale", type=float, default=None)
    lint_p.add_argument("--determinism", action="store_true",
                        help="also AST-lint the repro package sources for "
                        "wall-clock reads, unseeded randomness and "
                        "unsorted directory listings (LINT1xx)")
    _add_report_flags(lint_p)

    analyze_p = sub.add_parser(
        "analyze",
        help="certify static energy bounds without simulating",
    )
    analyze_p.add_argument("--app", default=None, choices=WORKLOAD_CHOICES,
                           help="workload to analyze (default: all)")
    analyze_p.add_argument(
        "--policy", default=None,
        choices=("default",) + POLICIES + ONLINE_POLICIES,
        help="power policy to analyze (default: the soundness-corpus "
        "sweep default/simple/history)")
    analyze_p.add_argument(
        "--scheme", choices=("both", "on", "off"), default="both",
        help="analyze with the scheduling scheme on, off or both "
        "(default: both)")
    analyze_p.add_argument("--scale", type=float, default=None)
    analyze_p.add_argument("--clients", type=int, default=None)
    analyze_p.add_argument("--ionodes", type=int, default=None)
    analyze_p.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="analyze under this fault plan (the envelope widens "
        "conservatively, PHASE002)")
    analyze_p.add_argument(
        "--check", action="store_true",
        help="also run the DES for every configuration and fail "
        "(ENERGY001) if a measured energy escapes its envelope")
    analyze_p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write envelope-width gauges as a metrics snapshot "
        "('repro report' merges it with simulation snapshots)")
    _add_report_flags(analyze_p)
    return parser


def _config(args) -> "ExperimentConfig":
    cfg = default_config(scale=args.scale)
    overrides = {}
    for field, attr in (
        ("n_clients", "clients"),
        ("n_ionodes", "ionodes"),
        ("delta", "delta"),
        ("theta", "theta"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "kernel", None):
        overrides["kernel"] = args.kernel
    if getattr(args, "reorder", False):
        overrides["reorder"] = True
    if getattr(args, "faults", None):
        from .faults import load_plan

        overrides["fault_plan"] = load_plan(args.faults)
    return cfg.scaled(**overrides) if overrides else cfg


def _resolved_cache_dir(args) -> Optional[str]:
    """The cache directory this invocation will use (None = --no-cache),
    absolute so a journal can be resumed from any working directory."""
    import os

    if getattr(args, "no_cache", False):
        return None
    return os.path.abspath(
        getattr(args, "cache_dir", None)
        or os.environ.get("REPRO_CACHE_DIR")
        or ".repro-cache"
    )


def _executor(args):
    """Build (executor, cache) from the shared --jobs/--cache/obs flags."""
    import tempfile

    from .exec import ExperimentExecutor, ResultCache

    cache_dir = _resolved_cache_dir(args)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    metrics_dir = None
    if getattr(args, "metrics", None):
        # Per-point snapshots land in a scratch dir; the command merges
        # them into the single --metrics file once the grid resolves.
        metrics_dir = tempfile.mkdtemp(prefix="repro-metrics-")
    executor = ExperimentExecutor(
        jobs=args.jobs,
        cache=cache,
        metrics_dir=metrics_dir,
        trace_path=getattr(args, "trace", None),
        trace_detail=getattr(args, "trace_detail", False),
    )
    return executor, cache


def _campaign_argv(args, command: str) -> list[str]:
    """The canonical argv a journal header records for ``repro resume``.

    Reconstructed from the parsed namespace (not ``sys.argv``) so
    programmatic invocations journal correctly too; paths are made
    absolute so resume works from any working directory.
    """
    import os

    argv: list[str] = [command]
    if command == "figure":
        argv.append(args.name)
    elif command == "tournament":
        for flag, attr in (
            ("--workloads", "workloads"), ("--entrants", "entrants"),
            ("--scenarios", "scenarios"),
        ):
            value = getattr(args, attr, None)
            if value is not None:
                argv += [flag, value]
        argv += ["--output-dir", os.path.abspath(args.output_dir)]
        if args.no_record:
            argv.append("--no-record")
        if args.json:
            argv.append("--json")
    else:
        argv += ["--app", args.app, "--policy", args.policy]
        if args.scheme:
            argv.append("--scheme")
        if getattr(args, "reorder", False):
            argv.append("--reorder")
        for flag, attr in (
            ("--clients", "clients"), ("--ionodes", "ionodes"),
            ("--delta", "delta"), ("--theta", "theta"),
        ):
            value = getattr(args, attr, None)
            if value is not None:
                argv += [flag, str(value)]
    if args.scale is not None:
        argv += ["--scale", repr(args.scale)]
    if getattr(args, "kernel", None):
        argv += ["--kernel", args.kernel]
    if getattr(args, "faults", None):
        argv += ["--faults", os.path.abspath(args.faults)]
    argv += ["--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    else:
        argv += ["--cache-dir", _resolved_cache_dir(args)]
    if args.timeout is not None:
        argv += ["--timeout", repr(args.timeout)]
    argv += ["--retries", str(args.retries)]
    if args.keep_going:
        argv.append("--keep-going")
    if getattr(args, "trace", None):
        argv += ["--trace", os.path.abspath(args.trace)]
        if args.trace_detail:
            argv.append("--trace-detail")
    if getattr(args, "metrics", None):
        argv += ["--metrics", os.path.abspath(args.metrics)]
    argv += ["--journal", os.path.abspath(args.journal)]
    return argv


def _supervisor(args, executor, command: str):
    """The campaign supervisor for a run/figure invocation (always built:
    with default flags it adds nothing but crash-retry to the executor)."""
    from .exec import CampaignJournal, CampaignSupervisor, SupervisorPolicy

    journal = None
    if args.journal:
        journal = CampaignJournal(
            args.journal, argv=_campaign_argv(args, command)
        )
    policy = SupervisorPolicy(
        timeout=args.timeout,
        retries=args.retries,
        keep_going=args.keep_going,
    )
    return CampaignSupervisor(executor, policy, journal=journal)


def _close_journal(supervisor) -> None:
    if supervisor.journal is not None:
        supervisor.journal.close()


def _interrupted(args) -> int:
    print("interrupted", file=sys.stderr)
    if getattr(args, "journal", None):
        print(
            f"resume with: repro resume {args.journal}", file=sys.stderr
        )
    return 130


def _report_failures(report, out) -> None:
    print(report.summary(), file=sys.stderr)
    for failure in report.failures:
        print(
            f"  {failure.label}: [{failure.outcome}] {failure.error}",
            file=sys.stderr,
        )


def _finish_obs(args, executor) -> None:
    """Merge per-point metrics into the --metrics file; announce outputs."""
    import shutil

    if executor.metrics_dir is not None:
        from .exec import merge_metrics_dir
        from .obs.metrics import write_snapshot

        write_snapshot(merge_metrics_dir(executor.metrics_dir), args.metrics)
        shutil.rmtree(executor.metrics_dir, ignore_errors=True)
        print(f"[obs] metrics written to {args.metrics}", file=sys.stderr)
    if executor.trace_path is not None:
        print(f"[obs] trace written to {executor.trace_path}", file=sys.stderr)


def cmd_list(_args, out) -> int:
    rows = [(w.name, "affine" if w.affine else "profiled", w.description)
            for w in all_workloads()]
    print(format_table(("workload", "slack path", "description"), rows),
          file=out)
    print(file=out)
    print("policies: default " + " ".join(POLICIES + ONLINE_POLICIES),
          file=out)
    from .experiments import DEFAULT_ENTRANTS

    print("tournament entrants: " + " ".join(
        e.name for e in DEFAULT_ENTRANTS), file=out)
    return 0


def cmd_run(args, out) -> int:
    from .exec import (
        CampaignFailed,
        ExperimentExecutor,
        PointTimeout,
        RunPoint,
        VerifyFailure,
        WorkerFailure,
    )

    cfg = _config(args)
    executor, cache = _executor(args)
    supervisor = _supervisor(args, executor, "run")
    runner = Runner(cfg, cache=cache)
    base_point = RunPoint(args.app, "default", False, cfg)
    target_point = RunPoint(args.app, args.policy, args.scheme, cfg)
    try:
        if executor.observed:
            # Only the requested configuration runs instrumented: merging
            # the baseline's gauges in (max semantics) would make the
            # snapshot describe neither run — in particular the
            # per-family energy gauges would no longer sum to the total
            # exactly.
            if target_point != base_point:
                plain = ExperimentExecutor(jobs=args.jobs, cache=cache)
                plain.warm_runner(runner, [base_point])
            report = supervisor.warm_runner(runner, [target_point])
        else:
            report = supervisor.warm_runner(
                runner, [base_point, target_point]
            )
    except KeyboardInterrupt:
        return _interrupted(args)
    except (VerifyFailure, WorkerFailure, PointTimeout, CampaignFailed) as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 1
    finally:
        _close_journal(supervisor)
    if report.failures:
        _report_failures(report, out)
        return 1
    _finish_obs(args, executor)
    base = runner.baseline(args.app)
    run = runner.run(args.app, args.policy, args.scheme)
    rows = [
        ("execution time", f"{run.execution_time:.1f} s"),
        ("disk energy", f"{run.energy_joules:,.1f} J"),
        ("vs default energy",
         format_percent(run.energy_joules / base.energy_joules)),
        ("energy saving",
         format_percent(1 - run.energy_joules / base.energy_joules)),
        ("perf degradation",
         format_percent(run.execution_time / base.execution_time - 1)),
        ("idle periods", run.idle_cdf.count),
        ("mean idle period", f"{run.idle_cdf.mean_seconds:.2f} s"),
        ("idle ≤100ms", format_percent(run.idle_cdf.fraction_at_most(100))),
        ("idle ≤5s", format_percent(run.idle_cdf.fraction_at_most(5000))),
    ]
    if args.scheme:
        rows.append(("prefetches", run.prefetches))
        rows.append(("buffer hits", run.buffer_hits))
    title = (
        f"{args.app} / {args.policy} / "
        f"{'with' if args.scheme else 'without'} scheme "
        f"(scale {cfg.workload_scale})"
    )
    print(format_table(("metric", "value"), rows, title=title), file=out)
    return 0


def cmd_figure(args, out) -> int:
    from .exec import (
        CampaignFailed,
        PointTimeout,
        VerifyFailure,
        WorkerFailure,
        figure_points,
    )

    cfg = default_config(scale=args.scale)
    if getattr(args, "kernel", None):
        cfg = cfg.scaled(kernel=args.kernel)
    if getattr(args, "faults", None):
        from .faults import load_plan

        cfg = cfg.scaled(fault_plan=load_plan(args.faults))
    executor, cache = _executor(args)
    supervisor = _supervisor(args, executor, "figure")
    runner = Runner(cfg, cache=cache)
    try:
        report = supervisor.warm_runner(runner, figure_points(args.name, cfg))
    except KeyboardInterrupt:
        return _interrupted(args)
    except (VerifyFailure, WorkerFailure, PointTimeout, CampaignFailed) as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 1
    finally:
        _close_journal(supervisor)
    if report.failures:
        # Rendering would silently re-simulate the missing points
        # in-process; report the partial campaign instead.
        _report_failures(report, out)
        return 1
    _finish_obs(args, executor)
    result = FIGURES[args.name](runner)
    print(result.text, file=out)
    stats = executor.stats
    print(
        f"[exec] points={stats.points} cache_hits={stats.cache_hits} "
        f"simulated={stats.simulated} jobs={args.jobs}",
        file=sys.stderr,
    )
    return 0


def cmd_resume(args, out) -> int:
    """Re-dispatch the argv a campaign journal recorded at launch."""
    from .exec import load_journal

    try:
        header, entries = load_journal(args.journal)
    except (OSError, ValueError) as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    argv = [str(piece) for piece in header["argv"]]
    if args.jobs is not None:
        if "--jobs" in argv:
            argv[argv.index("--jobs") + 1] = str(args.jobs)
        else:
            argv += ["--jobs", str(args.jobs)]
    outcomes: dict[str, int] = {}
    for entry in entries.values():
        outcome = entry.get("outcome", "?")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    journaled = " ".join(
        f"{name}={count}" for name, count in sorted(outcomes.items())
    )
    print(
        f"[resume] {len(entries)} journaled point(s)"
        + (f" ({journaled})" if journaled else "")
        + f"; re-dispatching: {' '.join(argv)}",
        file=sys.stderr,
    )
    resumed = build_parser().parse_args(argv)
    return _HANDLERS[resumed.command](resumed, out)


def cmd_bench(args, out) -> int:
    from .exec import (
        GRID_FIGURES,
        QUICK_FIGURES,
        all_figure_points,
        compare_with_previous,
        profile_grid,
        run_bench,
        write_bench_record,
    )

    scale = args.scale if args.scale is not None else (
        0.05 if args.quick else None
    )
    figures = args.figures or (QUICK_FIGURES if args.quick else GRID_FIGURES)
    unknown = sorted(set(figures) - set(GRID_FIGURES))
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.trace and args.no_serial:
        print("--trace needs the serial baseline (drop --no-serial)",
              file=sys.stderr)
        return 2
    cfg = default_config(scale=scale)
    if getattr(args, "kernel", None):
        cfg = cfg.scaled(kernel=args.kernel)
    record = run_bench(
        config=cfg,
        figures=tuple(figures),
        jobs=args.jobs,
        compare_serial=not args.no_serial,
        trace_path=args.trace,
        repeats=args.repeats,
        shootout=not args.no_shootout,
        server=not args.no_server,
        tournament=not args.no_tournament,
    )
    path = write_bench_record(record, args.output_dir)
    rows = [(k, v) for k, v in record.items()
            if isinstance(v, (int, float, str)) and k != "kind"]
    print(format_table(("field", "value"), rows, title="repro bench"),
          file=out)
    shootout = record.get("kernel_shootout")
    if shootout:
        srows = [
            (name, f"{k['seconds']:.4f} s", f"{k['events_per_sec']:,.0f}",
             f"{k['effective_events_per_sec']:,.0f}",
             f"{k['speedup_vs_heap']:.2f}x")
            for name, k in shootout["kernels"].items()
        ]
        print(file=out)
        print(format_table(
            ("kernel", "seconds", "events/s", "effective ev/s", "speedup"),
            srows,
            title=f"kernel shootout ({shootout['workload']} @ scale "
            f"{shootout['scale']}, best of {shootout['repeats']})",
        ), file=out)
    server_block = record.get("server")
    if server_block:
        print(file=out)
        print(_loadtest_table(server_block, title="serving throughput"),
              file=out)
    tournament_block = record.get("tournament")
    if tournament_block:
        trows = [
            (row["entrant"],
             f"{row['mean_normalized_energy']:.3f}",
             f"{row['mean_slowdown']:.3f}",
             "yes" if row["contained"] else "NO")
            for row in tournament_block["leaderboard"]
        ]
        print(file=out)
        print(format_table(
            ("entrant", "mean norm. energy", "mean slowdown", "in envelope"),
            trows,
            title="policy tournament (reduced grid: "
            + ",".join(tournament_block["workloads"]) + " x "
            + ",".join(tournament_block["scenarios"]) + ")",
        ), file=out)
    print(f"record written to {path}", file=out)
    compare_with_previous(record, args.output_dir, exclude=path, out=out)
    if args.profile is not None:
        points = all_figure_points(cfg, names=tuple(figures))
        for label, table in profile_grid(points, top=args.profile):
            print(file=out)
            print(f"--- profile: {label}", file=out)
            print(table, file=out)
    if args.max_trace_overhead is not None:
        overhead = record.get("trace_overhead")
        if overhead is None:
            print("no trace_overhead in record (pass --trace)",
                  file=sys.stderr)
            return 2
        if overhead > args.max_trace_overhead:
            print(
                f"trace overhead {overhead:.1%} exceeds the "
                f"{args.max_trace_overhead:.1%} budget",
                file=sys.stderr,
            )
            return 1
        print(
            f"trace overhead {overhead:.1%} within the "
            f"{args.max_trace_overhead:.1%} budget",
            file=out,
        )
    return 0


def _loadtest_table(report: dict, title: str) -> str:
    """Render a load-harness report dict as the standard two-column table."""
    latency = report.get("latency_ms", {})
    rows = [
        ("clients", report.get("clients")),
        ("requests", report.get("requests")),
        ("ok", report.get("ok")),
        ("failed", report.get("failed")),
        ("requests/sec", report.get("rps")),
        ("p50 latency", f"{latency.get('p50', 0.0):.1f} ms"),
        ("p99 latency", f"{latency.get('p99', 0.0):.1f} ms"),
        ("mean latency", f"{latency.get('mean', 0.0):.1f} ms"),
        ("cache hit rate", format_percent(report.get("cache_hit_rate", 0.0))),
        ("coalesced", report.get("batched")),
        ("simulated", report.get("simulated")),
        ("queue depth peak", int(report.get("queue_depth_peak", 0))),
        ("429 retries", report.get("rejected_retries")),
        ("transport retries", report.get("retried", 0)),
        ("deduplicated", report.get("deduplicated", 0)),
        ("lost admissions", report.get("lost", 0)),
    ]
    return format_table(("metric", "value"), rows, title=title)


def cmd_tournament(args, out) -> int:
    import json as json_mod

    from .exec import (
        CampaignFailed,
        PointTimeout,
        VerifyFailure,
        WorkerFailure,
    )
    from .experiments import (
        DEFAULT_ENTRANTS,
        SCENARIOS,
        run_tournament,
        write_tournament_record,
    )
    from .experiments.tournament import TOURNAMENT_WORKLOADS

    def _csv(value, choices, what):
        if value is None:
            return None
        picked = tuple(v.strip() for v in value.split(",") if v.strip())
        bad = sorted(set(picked) - set(choices))
        if bad:
            raise ValueError(
                f"unknown {what}: {', '.join(bad)} "
                f"(choose from {', '.join(choices)})"
            )
        return picked

    by_name = {e.name: e for e in DEFAULT_ENTRANTS}
    try:
        workloads = _csv(args.workloads, WORKLOAD_CHOICES, "workload(s)")
        entrant_names = _csv(args.entrants, tuple(by_name), "entrant(s)")
        scenarios = _csv(args.scenarios, SCENARIOS, "scenario(s)")
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    cfg = default_config(scale=args.scale)
    if args.kernel:
        cfg = cfg.scaled(kernel=args.kernel)
    executor, cache = _executor(args)
    supervisor = _supervisor(args, executor, "tournament")
    runner = Runner(cfg, cache=cache)
    try:
        doc = run_tournament(
            cfg,
            workloads=workloads or TOURNAMENT_WORKLOADS,
            entrants=(
                tuple(by_name[n] for n in entrant_names)
                if entrant_names else DEFAULT_ENTRANTS
            ),
            scenarios=scenarios or SCENARIOS,
            runner=runner,
            supervisor=supervisor,
        )
    except KeyboardInterrupt:
        return _interrupted(args)
    except (VerifyFailure, WorkerFailure, PointTimeout, CampaignFailed) as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 1
    finally:
        _close_journal(supervisor)

    if args.json:
        print(json_mod.dumps(doc, indent=2, sort_keys=True), file=out)
    else:
        rows = [
            (row["entrant"],
             f"{row['mean_normalized_energy']:.3f}",
             f"{row['mean_slowdown']:.3f}",
             f"{row['wins']}/{row['max_wins']}",
             "yes" if row["contained"] else "NO")
            for row in doc["leaderboard"]
        ]
        title = (
            f"policy tournament (scale {doc['scale']}; "
            f"{len(doc['workloads'])} workloads x "
            f"{len(doc['scenarios'])} scenarios)"
        )
        print(format_table(
            ("entrant", "mean norm. energy", "mean slowdown", "wins",
             "in envelope"),
            rows, title=title,
        ), file=out)
        names = [e["name"] for e in doc["entrants"]]
        matrix_rows = [
            tuple([a] + [
                "-" if a == b else str(doc["win_matrix"][a][b])
                for b in names
            ])
            for a in names
        ]
        print(file=out)
        print(format_table(
            ("wins of \\ over",) + tuple(names), matrix_rows,
            title="strict-energy win matrix (row beats column)",
        ), file=out)
    if not args.no_record:
        path = write_tournament_record(doc, args.output_dir)
        print(f"record written to {path}",
              file=sys.stderr if args.json else out)
    if not doc["all_contained"]:
        escaped = [
            f"{c['scenario']}/{c['workload']}/{c['entrant']}"
            for c in doc["cells"] if not c["contained"]
        ]
        print(
            "measured energy escaped its certified envelope for: "
            + ", ".join(escaped),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_serve(args, out) -> int:
    import asyncio
    import signal
    from pathlib import Path

    from .serve import SchedulingServer, ServerConfig

    cfg = default_config(scale=args.scale)
    if args.kernel:
        cfg = cfg.scaled(kernel=args.kernel)
    cache_dir = _resolved_cache_dir(args)
    if args.recover is not None and args.wal is not None \
            and args.recover != args.wal:
        print("--recover and --wal name different journals; pick one",
              file=sys.stderr)
        return 2
    wal = args.recover if args.recover is not None else args.wal
    chaos_plan = None
    if args.chaos:
        from .faults import load_plan

        try:
            chaos_plan = load_plan(args.chaos)
        except (OSError, ValueError, KeyError) as exc:
            print(f"bad chaos plan {args.chaos}: {exc}", file=sys.stderr)
            return 2
    try:
        server_config = ServerConfig(
            host=args.host,
            port=args.port,
            cache_root=Path(cache_dir) if cache_dir is not None else None,
            base_config=cfg,
            jobs=args.jobs,
            workers=args.workers,
            queue_limit=args.queue_limit,
            retries=args.retries,
            verify=not args.no_verify,
            wal_path=Path(wal) if wal is not None else None,
            recover=args.recover is not None,
            chaos_plan=chaos_plan,
            idle_timeout=args.idle_timeout,
        )
    except ValueError as exc:
        print(f"bad server configuration: {exc}", file=sys.stderr)
        return 2

    async def _main() -> None:
        server = SchedulingServer(server_config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, server.request_shutdown)
        replayed = server.metrics.counter("server.recovery.replayed").value \
            if server_config.recover else 0
        print(
            f"[serve] listening on {server.address} "
            f"(cache: {cache_dir or 'disabled'}, "
            f"scale {cfg.workload_scale}, "
            f"wal: {wal or 'off'}"
            + (f", replayed {replayed} job(s)" if server_config.recover
               else "")
            + (", chaos armed" if chaos_plan is not None else "")
            + "); SIGTERM drains",
            file=sys.stderr,
        )
        await server.wait_stopped()
        await server.stop()
        print("[serve] drained, shut down cleanly", file=sys.stderr)

    try:
        asyncio.run(_main())
    except ValueError as exc:
        # e.g. a populated WAL started without --recover
        print(f"[serve] {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_loadtest(args, out) -> int:
    import asyncio
    import json as json_mod
    import tempfile
    from pathlib import Path
    from urllib.parse import urlsplit

    from .serve import LoadgenConfig, run_inprocess_loadtest, run_loadgen

    apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
    bad = sorted(set(apps) - set(WORKLOAD_CHOICES))
    if bad:
        print(f"unknown workload(s): {', '.join(bad)}", file=sys.stderr)
        return 2
    schemes = {"off": (False,), "on": (True,), "both": (False, True)}[
        args.schemes
    ]
    mix = [
        {"workload": app, "policy": args.policy, "scheme": scheme}
        for app in apps
        for scheme in schemes
    ]

    try:
        if args.url:
            split = urlsplit(args.url)
            if not split.hostname:
                print(f"bad --url {args.url!r}", file=sys.stderr)
                return 2
            report = asyncio.run(
                run_loadgen(
                    LoadgenConfig(
                        host=split.hostname,
                        port=split.port or 8177,
                        clients=args.clients,
                        requests=args.requests,
                        mix=tuple(mix),
                        tenant=args.tenant,
                        warm=not args.no_warm,
                    )
                )
            )
        else:
            cfg = default_config(scale=args.scale)
            with tempfile.TemporaryDirectory(
                prefix="repro-loadtest-cache-"
            ) as td:
                report = asyncio.run(
                    run_inprocess_loadtest(
                        cfg,
                        Path(td),
                        clients=args.clients,
                        requests=args.requests,
                        mix=mix,
                        warm=not args.no_warm,
                    )
                )
    except (ConnectionError, OSError, RuntimeError) as exc:
        print(f"loadtest failed: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json_mod.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        print(_loadtest_table(report, title="repro loadtest"), file=out)
        for err in report.get("errors", []):
            print(f"  error: {err}", file=sys.stderr)

    if report["failed"]:
        print(f"{report['failed']} request(s) failed", file=sys.stderr)
        return 1
    if args.p99_budget is not None:
        p99_s = report["latency_ms"]["p99"] / 1e3
        if p99_s > args.p99_budget:
            print(
                f"p99 latency {p99_s:.3f}s exceeds the "
                f"{args.p99_budget:g}s budget",
                file=sys.stderr,
            )
            return 1
        print(
            f"p99 latency {p99_s:.3f}s within the "
            f"{args.p99_budget:g}s budget",
            # Keep stdout pure JSON under --json (pipelines redirect it).
            file=sys.stderr if args.json else out,
        )
    return 0


def cmd_report(args, out) -> int:
    from .obs.metrics import merge_snapshots, read_snapshot
    from .obs.report import render_snapshot, render_snapshot_json

    try:
        snapshots = [read_snapshot(p) for p in args.paths]
    except (OSError, ValueError) as exc:
        print(f"cannot read snapshot: {exc}", file=sys.stderr)
        return 2
    snap = snapshots[0] if len(snapshots) == 1 else merge_snapshots(snapshots)
    render = render_snapshot_json if args.json else render_snapshot
    print(render(snap, pattern=args.filter), file=out)
    return 0


def cmd_schedule(args, out) -> int:
    from .viz import access_density_timeline

    cfg = _config(args)
    runner = Runner(cfg)
    compiled = runner.compilation(args.app)
    stats = compiled.stats()
    rows = [(k, f"{v:.1f}" if isinstance(v, float) else v)
            for k, v in stats.items()]
    print(format_table(("stat", "value"), rows,
                       title=f"schedule for {args.app}"), file=out)
    if args.timeline:
        print(file=out)
        print(access_density_timeline(compiled, width=args.width), file=out)
    return 0


def _emit_reports(command, sections, args, out) -> int:
    """Render named reports per the uniform contract and return the exit
    code.  ``sections`` is ``[(name, Report)]``; JSON output is always a
    single document keyed by section name."""
    import json as json_mod

    fmt = _resolved_format(args)
    reports = [report for _, report in sections]
    rc = _reports_exit(reports, args.strict)
    if fmt == "json":
        doc = {
            "command": command,
            "strict": args.strict,
            "sections": {name: report.as_dict()
                         for name, report in sections},
            "clean": rc == 0,
        }
        print(json_mod.dumps(doc, indent=2), file=out)
    else:
        for name, report in sections:
            print(report.render_text(title=f"{command} {name}"), file=out)
    return rc


def cmd_verify(args, out) -> int:
    from .analysis import RuntimeModel, verify_schedule

    cfg = _config(args)
    runner = Runner(cfg)
    runtime = RuntimeModel.from_session_config(cfg.session_config())
    apps = [args.app] if args.app else list(APPS)
    sections = []
    for app in apps:
        compiled = runner.compilation(app)
        report = verify_schedule(
            compiled.trace,
            compiled.book,
            runtime=runtime,
            granularity=cfg.granularity,
            include_lint=not args.no_lint,
        )
        sections.append((app, report))
    return _emit_reports("verify", sections, args, out)


def cmd_lint(args, out) -> int:
    from .analysis import lint_program

    cfg = _config(args)
    runner = Runner(cfg)
    apps = [args.app] if args.app else list(APPS)
    sections = []
    for app in apps:
        sections.append((app, lint_program(runner.trace(app))))
    if args.determinism:
        from .analysis import lint_determinism

        sections.append(("determinism", lint_determinism()))
    return _emit_reports("lint", sections, args, out)


def cmd_analyze(args, out) -> int:
    import json as json_mod

    from .analysis import CORPUS_POLICIES, analyze_energy, check_envelope

    cfg = _config(args)
    runner = Runner(cfg)
    apps = [args.app] if args.app else list(APPS)
    policies = [args.policy] if args.policy else list(CORPUS_POLICIES)
    schemes = {"both": (False, True), "on": (True,), "off": (False,)}
    configs = []
    registry = None
    if args.metrics:
        from .obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
    for app in apps:
        trace = runner.trace(app)
        compiled = None
        for policy in policies:
            for scheme in schemes[args.scheme]:
                if scheme and compiled is None:
                    compiled = runner.compilation(app)
                analysis = analyze_energy(
                    trace, cfg, policy, scheme,
                    book=compiled.book if scheme else None,
                )
                measured = None
                if args.check:
                    measured = runner.run(
                        app, policy, scheme
                    ).energy_joules
                    analysis.report.extend(
                        check_envelope(analysis.envelope, measured)
                    )
                if registry is not None:
                    from .obs.collect import collect_envelope_metrics

                    collect_envelope_metrics(registry, analysis, measured)
                configs.append((app, policy, scheme, analysis, measured))
    if registry is not None:
        from .obs.metrics import write_snapshot

        write_snapshot(registry.snapshot(), args.metrics)
        print(f"[obs] metrics written to {args.metrics}", file=sys.stderr)

    reports = [analysis.report for _, _, _, analysis, _ in configs]
    rc = _reports_exit(reports, args.strict)
    if _resolved_format(args) == "json":
        doc = {
            "command": "analyze",
            "scale": cfg.workload_scale,
            "checked": bool(args.check),
            "strict": args.strict,
            "configs": [
                {
                    "app": app,
                    "policy": policy,
                    "scheme": scheme,
                    **analysis.as_dict(),
                    **({"measured_j": measured,
                        "contained": analysis.envelope.contains(measured)}
                       if measured is not None else {}),
                }
                for app, policy, scheme, analysis, measured in configs
            ],
            "clean": rc == 0,
        }
        print(json_mod.dumps(doc, indent=2), file=out)
        return rc

    headers = ["workload", "policy", "scheme", "E_lo (J)", "E_hi (J)",
               "rel width", "findings"]
    if args.check:
        headers[6:6] = ["measured (J)", "inside"]
    rows = []
    for app, policy, scheme, analysis, measured in configs:
        env = analysis.envelope
        row = [app, policy, "on" if scheme else "off",
               f"{env.energy_j.lo:,.1f}", f"{env.energy_j.hi:,.1f}",
               f"{env.relative_width:.3f}", str(len(analysis.report))]
        if args.check:
            row[6:6] = [f"{measured:,.1f}",
                        "yes" if env.contains(measured) else "NO"]
        rows.append(tuple(row))
    title = f"energy envelopes (scale {cfg.workload_scale})"
    print(format_table(tuple(headers), rows, title=title), file=out)
    for app, policy, scheme, analysis, _ in configs:
        if len(analysis.report):
            print(file=out)
            label = f"{app}/{policy}/scheme={'on' if scheme else 'off'}"
            print(analysis.report.render_text(title=f"analyze {label}"),
                  file=out)
    return rc


_HANDLERS = {
    "list": cmd_list,
    "run": cmd_run,
    "figure": cmd_figure,
    "resume": cmd_resume,
    "bench": cmd_bench,
    "tournament": cmd_tournament,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
    "report": cmd_report,
    "schedule": cmd_schedule,
    "verify": cmd_verify,
    "lint": cmd_lint,
    "analyze": cmd_analyze,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
