"""Tests for the static energy-bounds analyzer (repro.analysis.energy).

The load-bearing guarantee is *soundness*: for every configuration the
DES-simulated fleet energy must lie inside the analyzer's certified
[lower, upper] envelope.  The corpus here sweeps all six workloads
across the capability classes (none / spin-down / multi-speed), scheme
on and off, plus faulted configurations — faults may only *widen* the
envelope, never break containment.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CORPUS_POLICIES,
    analyze_energy,
    check_envelope,
    widen_envelope,
)
from repro.analysis.energy import POLICY_CLASSES, Interval
from repro.experiments import APPS, ExperimentConfig, Runner
from repro.faults import FaultEvent, FaultPlan
from repro.ir import (
    Compute,
    FileDecl,
    Loop,
    Program,
    Read,
    Write,
    trace_program,
    var,
)
from repro.ir.dependence import (
    AffineDependenceAnalyzer,
    certainly_cold_blocks,
)
from repro.ir.profiling import AccessTrace, ProcessTrace, TracedIO
from repro.storage import ParallelFileSystem
from repro.storage.raid import RaidMap
from repro.storage.striping import plan_layout

SMALL = ExperimentConfig(n_clients=4, n_ionodes=4, workload_scale=0.05)

MB = 1024 * 1024


@pytest.fixture(scope="module")
def runner():
    return Runner(SMALL)


# ----------------------------------------------------------------------
# Abstract domain
# ----------------------------------------------------------------------
class TestInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_contains_with_relative_slack(self):
        iv = Interval(10.0, 20.0)
        assert iv.contains(10.0)
        assert iv.contains(20.0)
        assert iv.contains(15.0)
        # Float-dust beyond the bound is tolerated, real escapes are not.
        assert iv.contains(20.0 * (1 + 1e-12))
        assert not iv.contains(20.1)
        assert not iv.contains(9.9)

    def test_widen_is_monotone(self):
        iv = Interval(10.0, 20.0)
        wide = iv.widen(0.25)
        assert wide.lo <= iv.lo
        assert wide.hi >= iv.hi
        assert wide.lo >= 0.0

    def test_widen_zero_is_identity(self):
        iv = Interval(3.0, 7.0)
        assert iv.widen(0.0) == iv


class TestWideningProperties:
    """Widening only ever loosens — the soundness-preservation property."""

    intervals = st.tuples(
        st.floats(min_value=0.0, max_value=1e9),
        st.floats(min_value=0.0, max_value=1e9),
    ).map(lambda t: Interval(min(t), max(t)))
    factors = st.floats(min_value=0.0, max_value=2.0)

    @given(iv=intervals, factor=factors, frac=st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_widened_interval_contains_original(self, iv, factor, frac):
        value = iv.lo + frac * (iv.hi - iv.lo)
        assert iv.contains(value)
        assert iv.widen(factor).contains(value)

    @given(iv=intervals, f1=factors, f2=factors)
    @settings(max_examples=80, deadline=None)
    def test_widening_composes_monotonically(self, iv, f1, f2):
        twice = iv.widen(f1).widen(f2)
        assert twice.lo <= iv.widen(f1).lo <= iv.lo
        assert twice.hi >= iv.widen(f1).hi >= iv.hi

    @given(factor=factors)
    @settings(max_examples=40, deadline=None)
    def test_widen_envelope_only_loosens(self, factor, runner):
        analysis = analyze_energy(
            runner.trace("hf"), SMALL, "simple", False
        )
        env = analysis.envelope
        wide = widen_envelope(env, factor, "PHASE001")
        for value in (env.energy_j.lo, env.energy_j.hi,
                      (env.energy_j.lo + env.energy_j.hi) / 2):
            assert wide.energy_j.contains(value)
        assert wide.time_s.contains(env.time_s.lo)
        assert wide.time_s.contains(env.time_s.hi)
        assert wide.busy_s.contains(env.busy_s.lo)
        assert wide.busy_s.contains(env.busy_s.hi)
        assert wide.widened_by == env.widened_by + ("PHASE001",)


class TestCheckEnvelope:
    def test_inside_is_clean(self, runner):
        env = analyze_energy(
            runner.trace("hf"), SMALL, "default", False
        ).envelope
        mid = (env.energy_j.lo + env.energy_j.hi) / 2
        assert not len(check_envelope(env, mid))

    def test_outside_is_energy001_error(self, runner):
        env = analyze_energy(
            runner.trace("hf"), SMALL, "default", False
        ).envelope
        report = check_envelope(env, env.energy_j.hi * 2 + 1.0)
        assert report.has_errors
        assert [d.code for d in report] == ["ENERGY001"]


# ----------------------------------------------------------------------
# Analyzer entry-point contract
# ----------------------------------------------------------------------
class TestAnalyzeEnergyContract:
    def test_unknown_policy_rejected(self, runner):
        with pytest.raises(ValueError, match="unknown policy"):
            analyze_energy(runner.trace("hf"), SMALL, "nope", False)

    def test_scheme_requires_book(self, runner):
        with pytest.raises(ValueError, match="ScheduleBook"):
            analyze_energy(runner.trace("hf"), SMALL, "simple", True)

    def test_no_capability_policy_reports_energy003(self, runner):
        analysis = analyze_energy(
            runner.trace("hf"), SMALL, "default", False
        )
        assert "ENERGY003" in analysis.report.codes()
        # No power state below full-speed idle: floor == rest draw.
        assert analysis.envelope.power_w.lo == pytest.approx(17.1)

    def test_capability_policies_reach_lower_floor(self, runner):
        trace = runner.trace("hf")
        spin = analyze_energy(trace, SMALL, "simple", False).envelope
        ramp = analyze_energy(trace, SMALL, "history", False).envelope
        none = analyze_energy(trace, SMALL, "default", False).envelope
        assert spin.power_w.lo < none.power_w.lo
        assert ramp.power_w.lo < spin.power_w.lo

    def test_residencies_shape(self, runner):
        analysis = analyze_energy(
            runner.trace("hf"), SMALL, "simple", False
        )
        assert len(analysis.residencies) == SMALL.n_ionodes
        horizon = analysis.envelope.time_s.hi
        for res in analysis.residencies:
            assert 0.0 <= res.serve_s.lo <= res.serve_s.hi
            assert res.rest_s.hi <= horizon * SMALL.disks_per_node + 1e-9
            if res.nominal_touches >= 2:
                assert res.min_nominal_gap_s <= res.max_nominal_gap_s

    def test_as_dict_round_trips_through_json(self, runner):
        import json

        analysis = analyze_energy(
            runner.trace("sar"), SMALL, "history", False
        )
        doc = json.loads(json.dumps(analysis.as_dict()))
        assert doc["envelope"]["energy_j"]["lo"] <= (
            doc["envelope"]["energy_j"]["hi"]
        )
        assert len(doc["residencies"]) == SMALL.n_ionodes


# ----------------------------------------------------------------------
# The differential soundness corpus
# ----------------------------------------------------------------------
class TestEnvelopeContainment:
    """DES energy inside the certified envelope, every config."""

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("policy", CORPUS_POLICIES)
    @pytest.mark.parametrize("scheme", [False, True])
    def test_des_energy_inside_envelope(self, runner, app, policy, scheme):
        trace = runner.trace(app)
        book = runner.compilation(app).book if scheme else None
        envelope = analyze_energy(
            trace, SMALL, policy, scheme, book=book
        ).envelope
        run = runner.run(app, policy, scheme)
        assert envelope.contains(run.energy_joules), (
            f"{app}/{policy}/scheme={scheme}: {run.energy_joules:.1f} J "
            f"outside [{envelope.energy_j.lo:.1f}, "
            f"{envelope.energy_j.hi:.1f}]"
        )
        assert envelope.time_s.contains(run.execution_time)

    def test_envelope_is_nontrivial(self, runner):
        # The lower bound must do real work, not default to zero.
        envelope = analyze_energy(
            runner.trace("hf"), SMALL, "default", False
        ).envelope
        assert envelope.energy_j.lo > 0
        assert envelope.relative_width < 1.0


FAULT_PLAN = FaultPlan(events=(
    FaultEvent(kind="disk.transient_errors", target="node1.disk0",
               time=5.0, duration=30.0, probability=0.5),
    FaultEvent(kind="net.latency", target="link2", time=0.0,
               duration=60.0, extra_latency=0.005),
    FaultEvent(kind="node.straggle", target="node2", time=10.0,
               duration=40.0, factor=3.0),
))


class TestFaultedContainment:
    """Faults force conservative widening, never a violated bound."""

    @pytest.mark.parametrize("app,policy,scheme", [
        ("sar", "simple", True),
        ("hf", "default", False),
    ])
    def test_faulted_config_still_contained(self, app, policy, scheme):
        cfg = SMALL.scaled(fault_plan=FAULT_PLAN)
        runner = Runner(cfg)
        book = runner.compilation(app).book if scheme else None
        envelope = analyze_energy(
            runner.trace(app), cfg, policy, scheme, book=book
        ).envelope
        assert "PHASE002" in envelope.widened_by
        run = runner.run(app, policy, scheme)
        assert envelope.contains(run.energy_joules)

    def test_degraded_raid5_contained(self):
        cfg = ExperimentConfig(
            n_clients=4, n_ionodes=2, workload_scale=0.05,
            disks_per_node=3, raid_level=5,
            fault_plan=FaultPlan(events=(
                FaultEvent(kind="disk.fail", target="node0.disk1",
                           time=0.0),
            )),
        )
        runner = Runner(cfg)
        envelope = analyze_energy(
            runner.trace("sar"), cfg, "simple", False
        ).envelope
        run = runner.run("sar", "simple", False)
        assert envelope.contains(run.energy_joules)

    def test_faults_only_widen(self, runner):
        clean = analyze_energy(
            runner.trace("sar"), SMALL, "simple", False
        ).envelope
        faulted = analyze_energy(
            Runner(SMALL.scaled(fault_plan=FAULT_PLAN)).trace("sar"),
            SMALL.scaled(fault_plan=FAULT_PLAN), "simple", False,
        ).envelope
        assert faulted.energy_j.lo <= clean.energy_j.lo
        assert faulted.energy_j.hi >= clean.energy_j.hi


# ----------------------------------------------------------------------
# Cold-block oracle (the lower bound's disk-traffic proof)
# ----------------------------------------------------------------------
def _two_phase_program(n_processes=2, steps=3):
    """Phase 1 reads input cold; phase 2 reads back its own writes."""
    files = {
        "inp": FileDecl("inp", n_processes * steps * 64 * 1024, 64 * 1024),
        "tmp": FileDecl("tmp", n_processes * steps * 64 * 1024, 64 * 1024),
    }
    p, t = var("p"), var("t")
    body = [
        Loop("t", 0, steps - 1, body=[
            Read("inp", t * n_processes + p),       # never written: cold
            Compute(1.0),
            Write("tmp", t * n_processes + p),
            Compute(1.0),
        ]),
        Loop("t", 0, steps - 1, body=[
            Read("tmp", t * n_processes + p),       # own write precedes
            Compute(1.0),
        ]),
    ]
    return Program("two-phase", n_processes, files, body)


class TestCertainlyColdBlocks:
    def test_never_written_blocks_are_cold(self):
        trace = trace_program(_two_phase_program())
        cold = certainly_cold_blocks(trace)
        inp_blocks = {key for key in cold if key[0] == "inp"}
        assert inp_blocks == {("inp", b) for b in range(6)}

    def test_write_before_read_blocks_are_not_cold(self):
        trace = trace_program(_two_phase_program())
        cold = certainly_cold_blocks(trace)
        assert not any(key[0] == "tmp" for key in cold)

    def test_read_before_write_is_cold(self):
        # Read at seq 0, write at seq 1, same process: the read must hit
        # disk whatever the interleaving.
        files = {"d": FileDecl("d", 64 * 1024, 64 * 1024)}
        body = [Read("d", 0), Compute(1.0), Write("d", 0)]
        trace = trace_program(Program("rw", 1, files, body))
        assert certainly_cold_blocks(trace) == {("d", 0)}

    def test_cross_process_write_disqualifies(self):
        # Process 0 only reads block 0; process 1 writes it with no
        # earlier read of its own.  In some legal interleaving the write
        # lands first and populates the cache, so the block is not
        # provably cold.
        reader = ProcessTrace(
            process=0, slot_costs=[1.0],
            ios=[TracedIO(0, 0, 0, False, "d", 0, 1)],
        )
        writer = ProcessTrace(
            process=1, slot_costs=[1.0],
            ios=[TracedIO(1, 0, 0, True, "d", 0, 1)],
        )
        trace = AccessTrace(program=None, processes=[reader, writer])
        assert certainly_cold_blocks(trace) == set()

    def test_affine_analyzer_agrees_with_trace_scan(self):
        program = _two_phase_program()
        assert program.is_affine
        static = AffineDependenceAnalyzer(program).certainly_cold_blocks()
        dynamic = certainly_cold_blocks(trace_program(program))
        assert static == dynamic


# ----------------------------------------------------------------------
# Shared layout/physics helpers the analyzer leans on
# ----------------------------------------------------------------------
class TestPlanLayoutAgreement:
    def test_matches_filesystem_allocation(self, sim):
        from conftest import fast_spec

        sizes = {"a": 3 * MB, "b": 1 * MB + 1, "c": 64 * 1024}
        pfs = ParallelFileSystem.build(
            sim, n_nodes=4, stripe_size=64 * 1024,
            disk_spec=fast_spec(), cache_bytes=1 * MB,
        )
        planned = plan_layout(sizes, 64 * 1024, 4)
        for name, size in sizes.items():
            actual = pfs.create_file(name, size)
            assert planned[name].base_row == actual.base_row
            assert planned[name].size == actual.size
            assert (
                planned[name].resolved_start(4)
                == actual.resolved_start(4)
            )


class TestRaidAmplificationPinned:
    """The analyzer's amplification bounds vs the actual translation."""

    @pytest.mark.parametrize("level,disks", [(0, 1), (0, 4), (5, 3),
                                             (5, 5), (10, 2), (10, 4)])
    def test_write_op_amplification_is_max_observed(self, level, disks):
        raid = RaidMap(level, disks, chunk_size=64 * 1024)
        bound = raid.write_op_amplification()
        worst = 0
        for chunk in range(4 * disks):
            ops = raid.map(chunk * 64 * 1024, 64 * 1024, is_write=True)
            worst = max(worst, len(ops))
            assert len(ops) <= bound
        assert worst == bound  # tight, not just sound

    @pytest.mark.parametrize("level,disks", [(0, 4), (5, 4), (10, 4)])
    def test_read_amplification_fault_free(self, level, disks):
        raid = RaidMap(level, disks, chunk_size=64 * 1024)
        for chunk in range(4 * disks):
            ops = raid.map(chunk * 64 * 1024, 64 * 1024, is_write=False)
            assert len(ops) <= raid.read_op_amplification()

    def test_degraded_raid5_read_amplification(self):
        raid = RaidMap(5, 4, chunk_size=64 * 1024)
        bound = raid.read_op_amplification(degraded=True)
        worst = 0
        for chunk in range(16):
            for dead in range(4):
                ops = raid.map(chunk * 64 * 1024, 64 * 1024,
                               is_write=False, dead={dead})
                worst = max(worst, len(ops))
                assert len(ops) <= bound
        assert worst == bound


class TestPolicyCapabilityFlags:
    def test_every_policy_registered(self):
        assert set(POLICY_CLASSES) == {
            "default", "simple", "prediction", "history", "staggered",
            "forecast", "credit", "hybrid",
        }

    def test_capability_classes(self):
        assert not POLICY_CLASSES["default"].can_spin_down
        assert not POLICY_CLASSES["default"].can_ramp
        assert POLICY_CLASSES["simple"].can_spin_down
        assert POLICY_CLASSES["prediction"].can_spin_down
        assert POLICY_CLASSES["history"].can_ramp
        assert POLICY_CLASSES["staggered"].can_ramp
        assert POLICY_CLASSES["forecast"].can_spin_down
        assert POLICY_CLASSES["credit"].can_ramp
        assert POLICY_CLASSES["hybrid"].can_spin_down

    def test_corpus_covers_every_capability_class(self):
        classes = {
            (POLICY_CLASSES[p].can_spin_down, POLICY_CLASSES[p].can_ramp)
            for p in CORPUS_POLICIES
        }
        assert classes == {(False, False), (True, False), (False, True)}


# ----------------------------------------------------------------------
# Envelope metrics (obs integration)
# ----------------------------------------------------------------------
class TestEnvelopeMetrics:
    def test_collect_envelope_metrics_names(self, runner):
        from repro.obs.collect import collect_envelope_metrics
        from repro.obs.metrics import MetricsRegistry

        analysis = analyze_energy(
            runner.trace("hf"), SMALL, "simple", False
        )
        registry = MetricsRegistry()
        collect_envelope_metrics(registry, analysis, measured_joules=1e4)
        snap = registry.snapshot()
        prefix = "analysis.hf.simple.off"
        gauges = snap["gauges"]
        assert gauges[f"{prefix}.energy.lower_j"] == pytest.approx(
            analysis.envelope.energy_j.lo
        )
        assert gauges[f"{prefix}.energy.upper_j"] == pytest.approx(
            analysis.envelope.energy_j.hi
        )
        assert gauges[f"{prefix}.measured_j"] == pytest.approx(1e4)
        assert gauges[f"{prefix}.contained"] == 1.0
        assert f"{prefix}.widenings" in snap["counters"]

    def test_bench_record_carries_envelope_widths(self):
        from repro.exec.bench import _envelope_widths

        rows = _envelope_widths(SMALL, ["hf"])
        assert len(rows) == len(CORPUS_POLICIES) * 2
        for row in rows:
            assert row["relative_width"] <= 1.0
            assert row["width_j"] >= 0.0
