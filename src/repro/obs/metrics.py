"""Counters, gauges and fixed-bucket histograms for run telemetry.

A :class:`MetricsRegistry` is a flat, name-addressed collection of three
instrument kinds:

* **counter** — monotonically increasing integer (requests, evictions);
* **gauge** — last-written float (peak buffer occupancy, joules per state);
* **histogram** — fixed upper-bound buckets plus a catch-all overflow
  bucket, with observation count and sum (queue delays, idle periods).

Snapshots are plain JSON-able dicts so they can be written per worker
process and merged later.  Merging is deterministic and order-independent:
counters and histograms add (commutative, associative), gauges take the
maximum (peak semantics — the only gauge aggregation that is
order-independent without extra bookkeeping).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterable, Sequence, Union

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "write_snapshot",
    "read_snapshot",
]

#: Version stamp of the snapshot layout.
METRICS_SCHEMA_VERSION = 1


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-written float."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max_update(self, value: float) -> None:
        """Keep the maximum of the current and the new value."""
        if value > self.value:
            self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram: ``len(bounds) + 1`` buckets.

    ``counts[i]`` counts observations ``v <= bounds[i]``; the final bucket
    is the open overflow.  Bounds are part of the identity — merging two
    histograms with different bounds is an error, not a silent re-bin.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError(f"histogram {name!r}: empty bounds")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r}: bounds not ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_fractions(self) -> list[float]:
        """Fraction of observations ≤ each bound (CDF over the buckets)."""
        if not self.count:
            return [0.0] * len(self.bounds)
        out, running = [], 0
        for c in self.counts[:-1]:
            running += c
            out.append(running / self.count)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-addressed instrument store with get-or-create semantics."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: type, *args: Any) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, "
                f"not a {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        hist = self._get(name, Histogram, bounds)
        assert isinstance(hist, Histogram)
        if hist.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return hist

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The registry's state as a JSON-able, mergeable dict."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            else:
                histograms[name] = {
                    "bounds": list(inst.bounds),
                    "counts": list(inst.counts),
                    "total": inst.total,
                    "count": inst.count,
                }
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-run snapshots into one (deterministic, order-independent).

    Counters and histogram buckets/sums add; gauges take the max.  The
    result of merging is independent of input order, so parallel workers
    can write snapshot files in any completion order.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, Any]] = {}
    merged_runs = 0
    for snap in snapshots:
        if snap.get("schema") != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"metrics schema {snap.get('schema')!r} != "
                f"current {METRICS_SCHEMA_VERSION}"
            )
        merged_runs += snap.get("merged_runs", 1)
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, float("-inf")), value)
        for name, h in snap.get("histograms", {}).items():
            have = histograms.get(name)
            if have is None:
                histograms[name] = {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                    "total": h["total"],
                    "count": h["count"],
                }
            else:
                if have["bounds"] != list(h["bounds"]):
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds differ across "
                        "snapshots"
                    )
                have["counts"] = [
                    a + b for a, b in zip(have["counts"], h["counts"])
                ]
                have["total"] += h["total"]
                have["count"] += h["count"]
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "merged_runs": merged_runs,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def write_snapshot(snapshot: dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a snapshot as canonical JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return path


def read_snapshot(path: Union[str, Path]) -> dict[str, Any]:
    """Load a snapshot written by :func:`write_snapshot`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        snap = json.load(fh)
    if snap.get("schema") != METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"metrics schema {snap.get('schema')!r} != "
            f"current {METRICS_SCHEMA_VERSION}"
        )
    return snap
