"""Figure 12(c) — normalized energy of the four policies, no scheme.

Paper shape: without software help the savings are modest and ordered
history > staggered > prediction > simple (15.6% / 9.8% / 6.3% / 4.7%
average savings in the paper); multi-speed beats spin-down.
"""

from repro.experiments import APPS, POLICIES, fig12c

from conftest import run_once


def averages(data):
    return {
        policy: sum(data[a][policy] for a in APPS) / len(APPS)
        for policy in POLICIES
    }


def test_fig12c_energy_without(benchmark, runner):
    result = run_once(benchmark, lambda: fig12c(runner))
    print("\n" + result.text)
    avg = averages(result.data)
    savings = {p: 1 - v for p, v in avg.items()}
    print("average savings:", {p: f"{s:.1%}" for p, s in savings.items()})
    # Multi-speed beats spin-down (the paper's §II motivation).
    assert savings["history"] > savings["prediction"]
    assert savings["history"] > savings["simple"]
    assert savings["staggered"] > savings["simple"]
    # History-based is the best policy overall (paper Fig. 12(c)).
    assert savings["history"] == max(savings.values())
    # Spin-down savings are small without the scheme ("less than 5% on
    # average" for simple in the paper; small single digits here too).
    assert savings["simple"] < 0.10
