"""Figure 13(b) — performance degradation with the scheme.

Paper shape: the scheme is beneficial for performance as well — the
simple strategy's average degradation drops (10.4% → 6.9% in the paper),
and every policy's degradation is no worse than without the scheme.
"""

from repro.experiments import APPS, POLICIES, fig13a, fig13b

from conftest import run_once


def averages(data):
    return {
        policy: sum(data[a][policy] for a in APPS) / len(APPS)
        for policy in POLICIES
    }


def test_fig13b_perf_with(benchmark, runner):
    without = averages(fig13a(runner).data)
    result = run_once(benchmark, lambda: fig13b(runner))
    print("\n" + result.text)
    avg = averages(result.data)
    for policy in POLICIES:
        print(f"{policy:>10}: {without[policy]:6.1%} -> {avg[policy]:6.1%}")
    # The headline: the scheme reduces the simple policy's degradation.
    assert avg["simple"] < without["simple"]
    # And no policy's average degradation grows materially.
    for policy in POLICIES:
        assert avg[policy] <= without[policy] + 0.02, policy
