"""Per-I/O-node storage cache (the server half of the two-tier hierarchy).

An LRU cache of fixed-size blocks with write-back semantics.  The cache
absorbs re-reads and defers writes; sequential prefetch is orchestrated by
the owning :class:`~repro.storage.ionode.IONode`, which inserts the
readahead blocks it fetches.  Capacity defaults to Table II's 64 MB per
I/O node.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "StorageCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache.

    The accounting identity every code path preserves (and
    ``tests/test_storage_cache.py`` checks) is::

        insertions == evictions + invalidations + resident blocks
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class StorageCache:
    """Block-granular LRU cache with dirty tracking."""

    def __init__(self, capacity_bytes: int, block_size: int):
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity: {capacity_bytes}")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive: {block_size}")
        self.block_size = block_size
        self.capacity_blocks = capacity_bytes // block_size
        self._blocks: OrderedDict[int, bool] = OrderedDict()  # block -> dirty
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def block_of(self, offset: int) -> int:
        """Block index covering byte ``offset``."""
        return offset // self.block_size

    def blocks_of(self, offset: int, size: int) -> list[int]:
        """Block indices covering the byte extent ``[offset, offset+size)``."""
        if size <= 0:
            return []
        first = offset // self.block_size
        last = (offset + size - 1) // self.block_size
        return list(range(first, last + 1))

    # ------------------------------------------------------------------
    def lookup(self, block: int) -> bool:
        """True on hit; refreshes LRU position and counts the access."""
        if block in self._blocks:
            self._blocks.move_to_end(block)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Presence check without touching LRU order or stats."""
        return block in self._blocks

    def insert(self, block: int, dirty: bool = False) -> list[int]:
        """Insert (or re-dirty) a block.  Returns the *dirty* blocks evicted
        to make room — the caller must flush those to disk."""
        if self.capacity_blocks == 0:
            # Degenerate cache: the block passes straight through —
            # counted as an insertion immediately evicted, so stats-based
            # reports see the traffic instead of a silent hole.
            self.stats.insertions += 1
            self.stats.evictions += 1
            if dirty:
                self.stats.dirty_evictions += 1
            # A dirty insert must be flushed immediately.
            return [block] if dirty else []
        if block in self._blocks:
            self._blocks[block] = self._blocks[block] or dirty
            self._blocks.move_to_end(block)
            return []
        self._blocks[block] = dirty
        self.stats.insertions += 1
        flush: list[int] = []
        while len(self._blocks) > self.capacity_blocks:
            victim, was_dirty = self._blocks.popitem(last=False)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.dirty_evictions += 1
                flush.append(victim)
        return flush

    def invalidate(self, block: int) -> bool:
        """Drop a block (e.g. consumed-once data).  Returns whether it was
        present and dirty (caller must flush if so)."""
        if block not in self._blocks:
            return False
        dirty = self._blocks.pop(block)
        self.stats.invalidations += 1
        return bool(dirty)

    def mark_clean(self, block: int) -> None:
        """Clear the dirty bit after a successful destage."""
        if block in self._blocks:
            self._blocks[block] = False

    def dirty_blocks(self) -> list[int]:
        """All currently dirty blocks, LRU-oldest first."""
        return [b for b, dirty in self._blocks.items() if dirty]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StorageCache({len(self._blocks)}/{self.capacity_blocks} blocks, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
