"""Disk power-management policies (paper §II, plus the online family).

Four evaluated policies — :class:`SimpleSpinDown`,
:class:`PredictionSpinDown`, :class:`HistoryBasedMultiSpeed`,
:class:`StaggeredMultiSpeed` — plus the :class:`NoPowerManagement`
baseline ("Default Scheme") and an oracle upper bound for ablations.

Beyond the paper, :mod:`repro.power.online` contributes three adaptive
policies — :class:`ForecastSpindown`, :class:`CreditMultiSpeed`,
:class:`HybridCompilerAssist` — pitted against the static compiler by
the policy tournament (:mod:`repro.experiments.tournament`).

:mod:`repro.power.hints` (schedule-derived nominal touch times) is *not*
re-exported here: it imports the storage layer, which depends back on
this package's policy interface; import it directly as
``from repro.power.hints import nominal_node_touch_times``.
"""

from .multispeed import HistoryBasedMultiSpeed, StaggeredMultiSpeed, speed_for_idle
from .online import CreditMultiSpeed, ForecastSpindown, HybridCompilerAssist
from .oracle import OracleSpinDown
from .policy import NoPowerManagement, PowerPolicy
from .predictor import IdlePredictor
from .spindown import PredictionSpinDown, SimpleSpinDown

__all__ = [
    "PowerPolicy",
    "NoPowerManagement",
    "SimpleSpinDown",
    "PredictionSpinDown",
    "HistoryBasedMultiSpeed",
    "StaggeredMultiSpeed",
    "ForecastSpindown",
    "CreditMultiSpeed",
    "HybridCompilerAssist",
    "OracleSpinDown",
    "IdlePredictor",
    "speed_for_idle",
]

POLICY_NAMES = (
    "default",
    "simple",
    "prediction",
    "history",
    "staggered",
    "forecast",
    "credit",
    "hybrid",
)


def make_policy(name: str, **kwargs) -> PowerPolicy:
    """Factory: build a policy by name.

    Paper policies: ``default`` | ``simple`` | ``prediction`` |
    ``history`` | ``staggered``.  Online family: ``forecast`` |
    ``credit`` | ``hybrid``.  Keyword arguments are forwarded to the
    policy constructor (``hybrid`` notably accepts ``hints=``).
    """
    factories = {
        "default": NoPowerManagement,
        "simple": SimpleSpinDown,
        "prediction": PredictionSpinDown,
        "history": HistoryBasedMultiSpeed,
        "staggered": StaggeredMultiSpeed,
        "forecast": ForecastSpindown,
        "credit": CreditMultiSpeed,
        "hybrid": HybridCompilerAssist,
    }
    if name not in factories:
        raise ValueError(f"unknown policy {name!r}; choose from {sorted(factories)}")
    return factories[name](**kwargs)
