"""Tests for the scheduling service (``repro.serve``).

Async scenarios run through ``asyncio.run`` inside synchronous test
functions (no pytest-asyncio dependency).  Integration tests bind real
sockets on 127.0.0.1 with port 0 (ephemeral), so they exercise the exact
wire path of a remote client.

The coalescing and backpressure tests use the server's ``run_batch_fn``
injection point with a gate: the batch thread blocks until the test
releases it, making "two submissions while the first is in flight" and
"the queue is full" deterministic instead of racy.
"""

import asyncio
import threading
import time

import pytest

from repro.exec.cache import point_digest
from repro.exec.serialize import run_result_from_dict
from repro.experiments import ExperimentConfig
from repro.serve import (
    SchedulingServer,
    ServerConfig,
    parse_point,
    parse_tenant,
)
from repro.serve.http import (
    HttpClient,
    HttpError,
    HttpRequest,
    read_request,
)

TINY = ExperimentConfig(workload_scale=0.05)


# ----------------------------------------------------------------------
# HTTP framing units
# ----------------------------------------------------------------------
async def _parse(payload: bytes):
    # StreamReader needs a running loop (3.11), so build it in here.
    reader = asyncio.StreamReader()
    reader.feed_data(payload)
    reader.feed_eof()
    return await read_request(reader)


class TestReadRequest:
    def test_parses_method_path_query_headers_body(self):
        req = asyncio.run(
            _parse(
                b"POST /v1/submit?wait=2&x=a%20b HTTP/1.1\r\n"
                b"Host: h\r\n"
                b"X-Repro-Tenant: alice\r\n"
                b"Content-Length: 2\r\n"
                b"\r\n{}"
            )
        )
        assert req.method == "POST"
        assert req.path == "/v1/submit"
        assert req.query == {"wait": "2", "x": "a b"}
        assert req.headers["x-repro-tenant"] == "alice"
        assert req.json() == {}

    def test_clean_eof_returns_none(self):
        assert asyncio.run(_parse(b"")) is None

    @pytest.mark.parametrize(
        "payload",
        [
            b"NOT-HTTP\r\n\r\n",
            b"GET / HTTP/1.1\r\nBroken-Header-No-Colon\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ],
    )
    def test_malformed_raises_http_error(self, payload):
        with pytest.raises(HttpError):
            asyncio.run(_parse(payload))

    def test_oversized_body_rejected_before_buffering(self):
        with pytest.raises(HttpError) as exc_info:
            asyncio.run(
                _parse(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            )
        assert exc_info.value.status == 413

    def test_garbage_json_body_is_400(self):
        async def scenario():
            req = await _parse(
                b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop"
            )
            return req.json()

        with pytest.raises(HttpError) as exc_info:
            asyncio.run(scenario())
        assert exc_info.value.status == 400


# ----------------------------------------------------------------------
# Submission parsing units
# ----------------------------------------------------------------------
class TestParsePoint:
    def test_minimal_submission(self):
        point = parse_point({"workload": "sar"}, TINY)
        assert (point.workload, point.policy, point.scheme) == (
            "sar", "default", False,
        )
        assert point.config == TINY

    def test_full_submission_with_overrides(self):
        point = parse_point(
            {
                "workload": "hf",
                "policy": "history",
                "scheme": True,
                "config": {"delta": 40, "kernel": "calendar"},
            },
            TINY,
        )
        assert point.config.delta == 40
        assert point.config.kernel == "calendar"
        assert point.config.workload_scale == TINY.workload_scale

    def test_fault_plan_override(self):
        doc = {
            "workload": "sar",
            "config": {
                "fault_plan": {
                    "seed": 7,
                    "events": [
                        {
                            "kind": "node.straggle",
                            "target": "node0",
                            "time": 10.0,
                            "duration": 50.0,
                            "factor": 2.0,
                        }
                    ],
                }
            },
        }
        point = parse_point(doc, TINY)
        assert point.config.fault_plan is not None

    @pytest.mark.parametrize(
        "doc",
        [
            "not a dict",
            {"workload": "nonsense"},
            {"workload": "sar", "policy": "nonsense"},
            {"workload": "sar", "scheme": "yes"},
            {"workload": "sar", "config": {"no_such_field": 1}},
            {"workload": "sar", "config": {"kernel": "warp-drive"}},
            {"workload": "sar", "config": "not a dict"},
            {"workload": "sar", "config": {"fault_plan": {"bogus": True}}},
        ],
    )
    def test_bad_submissions_are_400(self, doc):
        with pytest.raises(HttpError) as exc_info:
            parse_point(doc, TINY)
        assert exc_info.value.status == 400


class TestParseTenant:
    def _request(self, headers=None, query=None):
        return HttpRequest(
            method="POST", path="/v1/submit",
            query=query or {}, headers=headers or {},
        )

    def test_default(self):
        assert parse_tenant(self._request()) == "default"

    def test_header_wins_over_body(self):
        req = self._request(headers={"x-repro-tenant": "alice"})
        assert parse_tenant(req, {"tenant": "bob"}) == "alice"

    def test_body_and_query_fallbacks(self):
        assert parse_tenant(self._request(), {"tenant": "bob"}) == "bob"
        assert parse_tenant(self._request(query={"tenant": "eve"})) == "eve"

    @pytest.mark.parametrize(
        "tenant", [".hidden", "a/b", "", "x" * 65, "sp ace", "aé"]
    )
    def test_bad_tenants_rejected(self, tenant):
        req = self._request(headers={"x-repro-tenant": tenant})
        with pytest.raises(HttpError) as exc_info:
            parse_tenant(req)
        assert exc_info.value.status == 400


# ----------------------------------------------------------------------
# Integration harness
# ----------------------------------------------------------------------
class Harness:
    """One ephemeral-port server + one client, torn down cleanly."""

    def __init__(self, tmp_path, run_batch_fn=None, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("cache_root", tmp_path / "cache")
        overrides.setdefault("base_config", TINY)
        self.server = SchedulingServer(
            ServerConfig(**overrides), run_batch_fn=run_batch_fn
        )
        self.client: HttpClient = None

    async def __aenter__(self):
        await self.server.start()
        self.client = HttpClient("127.0.0.1", self.server.port)
        return self

    async def __aexit__(self, *_exc):
        await self.client.close()
        await self.server.stop()

    async def submit(self, doc, tenant=None):
        headers = {"X-Repro-Tenant": tenant} if tenant else None
        return await self.client.request(
            "POST", "/v1/submit", doc=doc, headers=headers
        )

    async def await_job(self, job_id, tenant=None, wait=30):
        headers = {"X-Repro-Tenant": tenant} if tenant else None
        deadline = 20
        for _ in range(deadline):
            status, _h, body = await self.client.request(
                "GET", f"/v1/jobs/{job_id}?wait={wait}", headers=headers
            )
            assert status == 200
            if body["job"]["state"] in ("done", "failed"):
                return body["job"]
        raise AssertionError(f"job {job_id} never reached a terminal state")

    async def metrics(self):
        _s, _h, body = await self.client.request("GET", "/v1/metrics")
        return body


SUBMIT_SAR = {"workload": "sar", "policy": "simple", "scheme": False}


class TestServerIntegration:
    def test_submit_poll_fetch_round_trip(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                status, _h2, body = await h.submit(SUBMIT_SAR)
                assert status == 202
                job = body["job"]
                assert job["state"] in ("queued", "running")
                assert job["coalesced"] is False
                done = await h.await_job(job["id"])
                assert done["state"] == "done"
                result = run_result_from_dict(done["result"])
                assert result.energy_joules > 0

                # The result is addressable by digest, per tenant.
                status, _h3, fetched = await h.client.request(
                    "GET", f"/v1/results/{job['digest']}"
                )
                assert status == 200
                assert run_result_from_dict(fetched["result"]) == result

                # Resubmission after completion: a cache hit, not a sim.
                status, _h4, body2 = await h.submit(SUBMIT_SAR)
                assert status == 202
                done2 = await h.await_job(body2["job"]["id"])
                assert run_result_from_dict(done2["result"]) == result
                snap = await h.metrics()
                assert snap["counters"]["server.simulated"] == 1
                assert snap["counters"]["server.cache_hits"] == 1

        asyncio.run(scenario())

    def test_health_status_metrics_endpoints(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                status, _h2, body = await h.client.request("GET", "/healthz")
                assert (status, body["status"]) == (200, "ok")
                assert body["draining"] is False
                status, _h3, doc = await h.client.request("GET", "/v1/status")
                assert status == 200
                assert doc["queue_limit"] == h.server.config.queue_limit
                snap = await h.metrics()
                assert "server.requests" in snap["counters"]

        asyncio.run(scenario())

    def test_error_codes(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                status, _a, _b = await h.submit({"workload": "nope"})
                assert status == 400
                status, _a, _b = await h.client.request(
                    "GET", "/v1/jobs/j999999-cafecafecafe"
                )
                assert status == 404
                status, _a, _b = await h.client.request("GET", "/nope")
                assert status == 404
                status, _a, _b = await h.client.request("DELETE", "/healthz")
                assert status == 405
                status, _a, _b = await h.client.request(
                    "GET", "/v1/results/nothex"
                )
                assert status == 400
                digest = "0" * 64
                status, _a, _b = await h.client.request(
                    "GET", f"/v1/results/{digest}"
                )
                assert status == 404

        asyncio.run(scenario())

    def test_coalescing_two_identical_submissions_one_simulation(
        self, tmp_path
    ):
        """The acceptance criterion: two identical concurrent submissions
        of the same point trigger exactly one simulation."""
        gate = threading.Event()
        holder = {}

        def gated(tenant, points):
            gate.wait(30)
            return holder["server"]._run_batch(tenant, points)

        async def scenario():
            async with Harness(tmp_path, run_batch_fn=gated) as h:
                holder["server"] = h.server
                _s1, _h1, first = await h.submit(SUBMIT_SAR)
                _s2, _h2, second = await h.submit(SUBMIT_SAR)
                # Same job, second submission coalesced onto it.
                assert second["job"]["id"] == first["job"]["id"]
                assert second["job"]["coalesced"] is True
                assert second["job"]["submissions"] == 2
                gate.set()
                done = await h.await_job(first["job"]["id"])
                assert done["state"] == "done"
                snap = await h.metrics()
                assert snap["counters"]["server.submissions"] == 2
                assert snap["counters"]["server.batched"] == 1
                assert snap["counters"]["server.enqueued"] == 1
                # Exactly one simulation, zero cache involvement.
                assert snap["counters"]["server.simulated"] == 1

        asyncio.run(scenario())

    def test_tenant_namespaces_isolate_caches(self, tmp_path):
        """The same point under two tenants simulates twice into two
        disjoint cache roots — digests stay tenant-agnostic, entries
        stay private."""
        async def scenario():
            async with Harness(tmp_path) as h:
                _s, _h2, a = await h.submit(SUBMIT_SAR, tenant="alice")
                done_a = await h.await_job(a["job"]["id"], tenant="alice")
                _s, _h3, b = await h.submit(SUBMIT_SAR, tenant="bob")
                done_b = await h.await_job(b["job"]["id"], tenant="bob")
                assert done_a["digest"] == done_b["digest"]  # same content
                snap = await h.metrics()
                assert snap["counters"]["server.simulated"] == 2
                assert snap["counters"]["server.cache_hits"] == 0

                digest = done_a["digest"]
                root = tmp_path / "cache"
                for tenant in ("alice", "bob"):
                    entry = root / tenant / digest[:2] / f"{digest}.json"
                    assert entry.is_file()

                # Cross-tenant fetch of an uncomputed namespace: 404.
                status, _h4, _body = await h.client.request(
                    "GET", f"/v1/results/{digest}?tenant=carol"
                )
                assert status == 404

        asyncio.run(scenario())

    def test_backpressure_429_with_retry_after(self, tmp_path):
        gate = threading.Event()
        holder = {}

        def gated(tenant, points):
            gate.wait(30)
            return holder["server"]._run_batch(tenant, points)

        async def scenario():
            async with Harness(
                tmp_path, run_batch_fn=gated,
                workers=1, queue_limit=1, batch_max=1,
            ) as h:
                holder["server"] = h.server
                # First submission: the lone worker picks it up and stalls.
                _s, _h2, first = await h.submit(SUBMIT_SAR)
                for _ in range(100):
                    _s2, _h3, status_doc = await h.client.request(
                        "GET", "/v1/status"
                    )
                    if status_doc["queue_depth"] == 0:
                        break
                    await asyncio.sleep(0.01)
                else:
                    raise AssertionError("worker never picked up the job")
                # Second (distinct) submission fills the queue.
                _s, _h4, _second = await h.submit(
                    {"workload": "hf", "policy": "simple"}
                )
                # Third bounces with 429 + Retry-After.
                status, headers, body = await h.submit(
                    {"workload": "astro", "policy": "simple"}
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert "error" in body
                snap = await h.metrics()
                assert snap["counters"]["server.rejected"] == 1
                gate.set()
                done = await h.await_job(first["job"]["id"])
                assert done["state"] == "done"

        asyncio.run(scenario())

    def test_graceful_drain_finishes_queued_work(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                _s, _h2, body = await h.submit(SUBMIT_SAR)
                h.server.request_shutdown()
                # New work is refused while draining...
                status, _h3, refused = await h.client.request(
                    "POST", "/v1/submit",
                    doc={"workload": "hf", "policy": "simple"},
                )
                assert status == 503
                assert "draining" in refused["error"]
                # ...but the accepted job still completes.
                await asyncio.wait_for(h.server.wait_stopped(), timeout=60)
                job = h.server._jobs[body["job"]["id"]]
                assert job.state == "done"

        asyncio.run(scenario())

    def test_grid_submission(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                status, _h2, body = await h.client.request(
                    "POST", "/v1/grid", doc={"figure": "table3"}
                )
                assert status == 202
                assert body["count"] == len(body["jobs"]) > 0
                for job in body["jobs"]:
                    done = await h.await_job(job["id"])
                    assert done["state"] == "done"
                status, _h3, _b = await h.client.request(
                    "POST", "/v1/grid", doc={"figure": "fig99z"}
                )
                assert status == 400

        asyncio.run(scenario())

    def test_events_stream_reaches_terminal_state(self, tmp_path):
        """The chunked JSONL stream ends with a terminal-state line."""
        import json as json_mod

        async def scenario():
            async with Harness(tmp_path) as h:
                _s, _h2, body = await h.submit(SUBMIT_SAR)
                job_id = body["job"]["id"]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", h.server.port
                )
                try:
                    writer.write(
                        f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                        f"Host: x\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await asyncio.wait_for(reader.read(-1), timeout=60)
                finally:
                    writer.close()
                    await writer.wait_closed()
                text = raw.decode("utf-8")
                assert "Transfer-Encoding: chunked" in text
                states = []
                for line in text.splitlines():
                    if line.startswith("{"):
                        states.append(json_mod.loads(line)["state"])
                assert states[-1] in ("done", "failed")

        asyncio.run(scenario())

    def test_failed_point_reports_error_not_hang(self, tmp_path):
        """A batch that raises marks its jobs failed; the server lives."""
        def exploding(tenant, points):
            raise RuntimeError("batch runner exploded")

        async def scenario():
            async with Harness(tmp_path, run_batch_fn=exploding) as h:
                _s, _h2, body = await h.submit(SUBMIT_SAR)
                done = await h.await_job(body["job"]["id"])
                assert done["state"] == "failed"
                assert "exploded" in done["error"]
                snap = await h.metrics()
                assert snap["counters"]["server.failed"] == 1
                # The server still answers.
                status, _h3, _b = await h.client.request("GET", "/healthz")
                assert status == 200

        asyncio.run(scenario())


class TestIdleTimeout:
    """Long-polls and event streams are bounded by ``idle_timeout`` —
    a stalled or absent state change can't pin a connection forever."""

    def test_long_poll_bounded_by_idle_timeout(self, tmp_path):
        gate = threading.Event()
        holder = {}

        def gated(tenant, points):
            gate.wait(30)
            return holder["server"]._run_batch(tenant, points)

        async def scenario():
            async with Harness(
                tmp_path, run_batch_fn=gated, idle_timeout=0.2
            ) as h:
                holder["server"] = h.server
                _s, _h2, body = await h.submit(SUBMIT_SAR)
                job_id = body["job"]["id"]
                started = time.monotonic()
                status, _h3, body = await h.client.request(
                    "GET", f"/v1/jobs/{job_id}?wait=30"
                )
                elapsed = time.monotonic() - started
                # The 30 s ask was clamped to the 0.2 s idle timeout and
                # answered with the still-queued snapshot.
                assert status == 200
                assert body["job"]["state"] in ("queued", "running")
                assert 0.1 <= elapsed < 5.0
                gate.set()
                done = await h.await_job(job_id)
                assert done["state"] == "done"

        asyncio.run(scenario())

    def test_event_stream_closes_cleanly_on_idle(self, tmp_path):
        gate = threading.Event()
        holder = {}

        def gated(tenant, points):
            gate.wait(30)
            return holder["server"]._run_batch(tenant, points)

        async def scenario():
            async with Harness(
                tmp_path, run_batch_fn=gated, idle_timeout=0.2
            ) as h:
                holder["server"] = h.server
                _s, _h2, body = await h.submit(SUBMIT_SAR)
                job_id = body["job"]["id"]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", h.server.port
                )
                try:
                    writer.write(
                        f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                        f"Host: x\r\n\r\n".encode()
                    )
                    await writer.drain()
                    # No state change is coming (the batch is gated):
                    # the server must close the stream, not hold it.
                    raw = await asyncio.wait_for(reader.read(-1), timeout=10)
                finally:
                    writer.close()
                    await writer.wait_closed()
                text = raw.decode("utf-8")
                assert "Transfer-Encoding: chunked" in text
                # Clean chunked termination, snapshot only.
                assert text.endswith("0\r\n\r\n")
                states = [
                    line for line in text.splitlines()
                    if line.startswith("{")
                ]
                assert len(states) == 1
                gate.set()
                done = await h.await_job(job_id)
                assert done["state"] == "done"

        asyncio.run(scenario())


class TestServerConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"jobs": 0},
            {"workers": 0},
            {"queue_limit": 0},
            {"batch_max": 0},
            {"idle_timeout": 0},
        ],
    )
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServerConfig(**overrides)


class TestDigestTenantAgnosticism:
    def test_digest_never_sees_the_tenant(self):
        """The content address is a function of the point alone — the
        tenant only picks the cache root (DESIGN.md §16)."""
        digest = point_digest(TINY, "sar", "simple", False)
        assert len(digest) == 64
        point = parse_point(dict(SUBMIT_SAR), TINY)
        assert point_digest(
            point.config, point.workload, point.policy, point.scheme
        ) == digest
