"""Render a metrics snapshot for humans (`repro report`).

Snapshots are flat name → value maps; rendering groups instruments by
their first dot-separated segment so one run reads as a stack of small
tables (drive, buffer, cache, net, …) instead of one 200-row dump.
"""

from __future__ import annotations

import fnmatch
import json
from typing import Any, Optional

from ..metrics.report import format_table

__all__ = ["render_snapshot", "render_snapshot_json"]


def _group_of(name: str) -> str:
    return name.split(".", 1)[0]


def _fmt_value(value: Any) -> str:
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1e-3:
        return f"{value:.6g}"
    return f"{value:.4e}"


def _hist_row(name: str, h: dict[str, Any]) -> list[str]:
    count = h["count"]
    mean = h["total"] / count if count else 0.0
    overflow = h["counts"][-1]
    return [name, str(count), _fmt_value(mean), str(overflow)]


def render_snapshot(
    snapshot: dict[str, Any], pattern: Optional[str] = None
) -> str:
    """Render a snapshot as grouped ASCII tables.

    ``pattern`` is an optional ``fnmatch`` glob filter on metric names
    (e.g. ``'drive.*'`` or ``'*.energy.*'``).
    """

    def keep(name: str) -> bool:
        return pattern is None or fnmatch.fnmatch(name, pattern)

    sections: list[str] = []
    runs = snapshot.get("merged_runs")
    header = f"metrics snapshot (schema {snapshot.get('schema')})"
    if runs is not None:
        header += f", merged from {runs} run(s)"
    sections.append(header)

    scalars: dict[str, list[list[str]]] = {}
    for name, value in snapshot.get("counters", {}).items():
        if keep(name):
            scalars.setdefault(_group_of(name), []).append(
                [name, "counter", _fmt_value(value)]
            )
    for name, value in snapshot.get("gauges", {}).items():
        if keep(name):
            scalars.setdefault(_group_of(name), []).append(
                [name, "gauge", _fmt_value(value)]
            )
    for group in sorted(scalars):
        rows = sorted(scalars[group], key=lambda r: r[0])
        sections.append(
            format_table(
                ["metric", "kind", "value"], rows, title=f"[{group}]"
            )
        )

    hist_rows = [
        _hist_row(name, h)
        for name, h in sorted(snapshot.get("histograms", {}).items())
        if keep(name)
    ]
    if hist_rows:
        sections.append(
            format_table(
                ["histogram", "count", "mean", "overflow"],
                hist_rows,
                title="[histograms]",
            )
        )
    return "\n\n".join(sections)


def render_snapshot_json(
    snapshot: dict[str, Any], pattern: Optional[str] = None
) -> str:
    """The snapshot (optionally name-filtered) as indented JSON."""
    if pattern is not None:
        snapshot = {
            key: (
                {n: v for n, v in val.items() if fnmatch.fnmatch(n, pattern)}
                if key in ("counters", "gauges", "histograms")
                else val
            )
            for key, val in snapshot.items()
        }
    return json.dumps(snapshot, indent=2, sort_keys=True)
