"""Diagnostics engine: codes, severities, anchors, renderers."""

from __future__ import annotations

import json

import pytest

from repro.analysis import CODES, Diagnostic, Report, Severity, SourceAnchor


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.INFO.label == "info"


class TestCodes:
    def test_registry_is_populated(self):
        assert {"SCHED001", "RACE001", "CAP001", "LINT001"} <= set(CODES)

    def test_every_code_has_summary(self):
        for code, summary in CODES.items():
            assert summary, code

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("NOPE999", Severity.ERROR, "bad")


class TestSourceAnchor:
    def test_str_full(self):
        anchor = SourceAnchor(process=2, slot=7, aid=13, file="f", block=4)
        assert str(anchor) == "p2:slot 7:a13:f[4]"

    def test_str_empty(self):
        assert str(SourceAnchor()) == "<schedule>"

    def test_as_dict_drops_missing(self):
        assert SourceAnchor(process=1).as_dict() == {"process": 1}


class TestReport:
    def _report(self) -> Report:
        report = Report()
        report.add(Diagnostic("LINT001", Severity.INFO, "note"))
        report.add(Diagnostic(
            "SCHED001", Severity.ERROR, "bad slot", SourceAnchor(aid=3)
        ))
        report.add(Diagnostic("CAP002", Severity.WARNING, "tight"))
        return report

    def test_severity_partition(self):
        report = self._report()
        assert len(report) == 3
        assert report.has_errors
        assert [d.code for d in report.errors] == ["SCHED001"]
        assert [d.code for d in report.warnings] == ["CAP002"]

    def test_by_code_and_counts(self):
        report = self._report()
        assert len(report.by_code("SCHED001")) == 1
        assert report.counts() == {"CAP002": 1, "LINT001": 1, "SCHED001": 1}
        with pytest.raises(ValueError):
            report.by_code("BOGUS001")

    def test_sorted_worst_first(self):
        codes = [d.code for d in self._report().sorted()]
        assert codes == ["SCHED001", "CAP002", "LINT001"]

    def test_render_text(self):
        text = self._report().render_text(title="unit")
        assert text.startswith("== unit ==")
        assert "error[SCHED001] a3: bad slot" in text
        assert "1 error(s), 1 warning(s), 1 note(s)" in text

    def test_render_json_roundtrip(self):
        payload = json.loads(self._report().render_json())
        assert payload["errors"] == 1
        assert payload["clean"] is False
        first = payload["diagnostics"][0]
        assert first["code"] == "SCHED001"
        assert first["severity"] == "error"
        assert first["summary"] == CODES["SCHED001"]
        assert first["anchor"] == {"aid": 3}

    def test_empty_report_is_clean(self):
        report = Report()
        assert not report.has_errors
        assert json.loads(report.render_json())["clean"] is True
