"""``hf`` — Hartree-Fock method model.

Paper profile (Table III / Fig. 12(a)): 27.9 min, and the *shortest* idle
periods of the suite (>90 % of idle periods under 50 ms by count).

Structure modelled: SCF supersteps.  Each superstep is

* an **integral sweep** — per phase every process reads two private
  integral blocks (dense request bursts on the I/O nodes; the many tiny
  inter-request gaps dominate the idle CDF by count) followed by short
  Fock-update compute slots (the 1–5 s "mid" gaps multi-speed disks can
  exploit), then a burst of Fock-matrix writes;
* a **diagonalization stretch** — a run of long (~95 s) dense-algebra
  slots with one small convergence-data read between each pair.  These
  are the only idle periods long enough for spin-down to pay off, and
  because they come in runs, the prediction-based policies lock onto
  them.  The interleaved reads carry sweep-long slacks, so the compiler
  scheme hoists them into the sweep and fuses the whole stretch into one
  giant idle period — the paper's headline "makes spin-down viable"
  effect.

Constant costs keep processes in lockstep: the affine/polyhedral path.
"""

from __future__ import annotations

from ..ir.affine import var
from ..ir.program import Compute, FileDecl, Loop, Program, Read, Write
from .base import WorkloadInfo, jitter, register, scaled

__all__ = ["build"]

BLOCK_BYTES = 128 * 1024   # 2 stripes -> 2-node signatures (cf. Fig. 9)
SUPERSTEPS = 3
PHASES_PER_SS = 80       # sweep phases per superstep
STRETCH_SLOTS = 6        # long diagonalization slots per superstep
SWEEP_SLOTS = 9          # fine compute slots per sweep phase
SWEEP_COST = 0.4         # seconds per fine compute slot
STRETCH_COST = 25.0      # seconds per diagonalization slot — far below
                         # the spin-down break-even: spin-down only pays
                         # off once the scheme fuses the whole stretch


def build(n_processes: int = 32, scale: float = 1.0) -> Program:
    """Build the hf program.

    ``scale`` multiplies the sweep length; ``scale=1.0`` ⇒ ≈25 simulated
    minutes with 32 processes.
    """
    phases = scaled(PHASES_PER_SS, scale)
    stretch_slots = scaled(STRETCH_SLOTS, scale, minimum=4)
    p = var("p")
    ss = var("ss")
    ph = var("ph")

    phases_total = SUPERSTEPS * phases
    n_integral_blocks = 6 * n_processes * phases_total
    n_fock_blocks = n_processes * SUPERSTEPS
    n_conv_blocks = 5 * n_processes * SUPERSTEPS * stretch_slots

    files = {
        "integrals": FileDecl("integrals", n_integral_blocks, BLOCK_BYTES),
        "fock": FileDecl("fock", n_fock_blocks, BLOCK_BYTES),
        "convergence": FileDecl("convergence", n_conv_blocks, BLOCK_BYTES),
    }

    body = [
        Loop("ss", 0, SUPERSTEPS - 1, body=[
            # --- Integral sweep: dense I/O, short compute. ---
            Loop("ph", 0, phases - 1, body=[
                # Stride 3 keeps successive phases' blocks apart on
                # disk so server-side readahead cannot silently absorb
                # the next phase (which would blur burst boundaries).
                Read("integrals",
                     (p * phases_total + ss * phases + ph) * 6),
                Read("integrals",
                     (p * phases_total + ss * phases + ph) * 6 + 3),
            ] + [Compute(jitter(SWEEP_COST, 0.01, k)) for k in range(SWEEP_SLOTS)] + [
            ]),
            # Fock contribution of this superstep.
            Write("fock", p * SUPERSTEPS + ss),
            Compute(0.4),
            # --- Diagonalization stretch: runs of long idle periods. ---
            Loop("ls", 0, stretch_slots - 1, body=[
                Read("convergence",
                     (p + n_processes * (ss * stretch_slots + var("ls"))) * 5),
                Compute(jitter(STRETCH_COST, 0.02, 99)),
            ]),
        ]),
    ]
    return Program("hf", n_processes, files, body)


register(
    WorkloadInfo(
        name="hf",
        description="Hartree-Fock: lockstep integral sweeps (dense "
        "bursts) + diagonalization stretches (long idle runs)",
        build=build,
        affine=True,
    )
)
