"""Tests for service-layer chaos (``repro.serve.chaos``) and the client
resilience that survives it.

Every test arms a fault with ``probability=1.0`` and a ``count`` budget,
so the chaos schedule is exact: the fault fires on its first N
opportunities and never again.  The resilient :class:`HttpClient` is the
other half of the contract — requests still *succeed*, they just cost a
retry, and the ``server.chaos.*`` counters prove the fault actually
fired rather than the test passing vacuously.
"""

import asyncio

from repro.experiments import ExperimentConfig
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serve import SchedulingServer, ServerConfig, chaos_engine
from repro.serve.chaos import CHAOS_COUNTERS, ChaosEngine
from repro.serve.http import CircuitBreaker, HttpClient

TINY = ExperimentConfig(workload_scale=0.05)
SUBMIT_SAR = {"workload": "sar", "policy": "simple", "scheme": False}


def _plan(kind, *, probability=1.0, count=1, extra_latency=0.0, seed=11):
    return FaultPlan(
        events=(
            FaultEvent(
                kind=kind,
                target="*",
                probability=probability,
                count=count,
                extra_latency=extra_latency,
            ),
        ),
        seed=seed,
    )


class _Harness:
    """Ephemeral chaos server + resilient client for one scenario."""

    def __init__(self, tmp_path, plan=None, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("cache_root", tmp_path / "cache")
        overrides.setdefault("base_config", TINY)
        self.server = SchedulingServer(
            ServerConfig(chaos_plan=plan, **overrides)
        )
        self.client: HttpClient = None

    async def __aenter__(self):
        await self.server.start()
        self.client = HttpClient("127.0.0.1", self.server.port)
        return self

    async def __aexit__(self, *exc):
        await self.client.close()
        await self.server.stop()

    async def submit_and_finish(self, doc=SUBMIT_SAR):
        status, _h, body = await self.client.request(
            "POST", "/v1/submit", doc=doc
        )
        assert status == 202
        job_id = body["job"]["id"]
        for _ in range(40):
            status, _h, body = await self.client.request(
                "GET", f"/v1/jobs/{job_id}?wait=30"
            )
            assert status == 200
            if body["job"]["state"] in ("done", "failed"):
                return body["job"]
        raise AssertionError(f"job {job_id} never finished")

    def chaos_count(self, kind):
        return self.server.metrics.counter(CHAOS_COUNTERS[kind]).value


class TestChaosEngineUnit:
    def test_no_plan_builds_no_engine(self):
        assert chaos_engine(None, MetricsRegistry()) is None

    def test_simulation_only_plan_builds_no_engine(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="disk.transient_errors",
                    target="node0.disk1",
                    time=1.0,
                    duration=2.0,
                    probability=0.5,
                ),
            ),
            seed=3,
        )
        assert chaos_engine(plan, MetricsRegistry()) is None

    def test_server_only_plan_is_invisible_to_the_simulator(self):
        injector = FaultInjector(_plan("server.conn_reset"))
        assert injector.injected == {}
        assert injector.drive_state("node0.disk1") is None

    def test_count_bounds_firings_exactly(self):
        metrics = MetricsRegistry()
        engine = ChaosEngine(_plan("server.conn_reset", count=2), metrics)
        fired = [engine.connection_reset() for _ in range(10)]
        assert fired[:2] == [True, True]
        assert not any(fired[2:])
        assert metrics.counter("server.chaos.conn_resets").value == 2

    def test_same_seed_same_schedule(self):
        plan = _plan("server.conn_reset", probability=0.5, count=0, seed=42)
        first = ChaosEngine(plan, MetricsRegistry())
        second = ChaosEngine(plan, MetricsRegistry())
        draws = 50
        assert [first.connection_reset() for _ in range(draws)] == [
            second.connection_reset() for _ in range(draws)
        ]

    def test_kinds_draw_from_independent_streams(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="server.conn_reset",
                    target="*",
                    probability=0.5,
                    count=0,
                ),
                FaultEvent(
                    kind="server.truncate_body",
                    target="*",
                    probability=0.5,
                    count=0,
                ),
            ),
            seed=42,
        )
        # Interleaving truncate draws must not shift the reset schedule.
        plain = ChaosEngine(plan, MetricsRegistry())
        resets_alone = [plain.connection_reset() for _ in range(20)]
        mixed = ChaosEngine(plan, MetricsRegistry())
        resets_mixed = []
        for _ in range(20):
            mixed.truncate_body()
            resets_mixed.append(mixed.connection_reset())
        assert resets_alone == resets_mixed

    def test_stall_kinds_report_their_latency(self):
        engine = ChaosEngine(
            _plan("server.slow_loris", extra_latency=0.25), MetricsRegistry()
        )
        assert engine.read_stall() == 0.25
        assert engine.read_stall() == 0.0  # budget spent


class TestChaosFreeServer:
    def test_no_chaos_counters_without_a_plan(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                _s, _h2, snap = await h.client.request("GET", "/v1/metrics")
                chaos_keys = [
                    k for k in snap["counters"] if k.startswith("server.chaos")
                ]
                assert chaos_keys == []
                _s, _h2, status = await h.client.request("GET", "/v1/status")
                assert status["chaos"] is False

        asyncio.run(scenario())


class TestConnectionFaults:
    def test_conn_reset_is_retried_through(self, tmp_path):
        async def scenario():
            plan = _plan("server.conn_reset")
            async with _Harness(tmp_path, plan) as h:
                done = await h.submit_and_finish()
                assert done["state"] == "done"
                assert h.chaos_count("server.conn_reset") == 1
                assert h.client.transport_retries >= 1

        asyncio.run(scenario())

    def test_truncated_body_is_retried_through(self, tmp_path):
        async def scenario():
            plan = _plan("server.truncate_body")
            async with _Harness(tmp_path, plan) as h:
                done = await h.submit_and_finish()
                assert done["state"] == "done"
                assert h.chaos_count("server.truncate_body") == 1
                assert h.client.transport_retries >= 1

        asyncio.run(scenario())

    def test_oversize_body_does_not_corrupt_the_parse(self, tmp_path):
        async def scenario():
            plan = _plan("server.oversize_body")
            async with _Harness(tmp_path, plan) as h:
                # Content-Length framing shields the client: it reads
                # exactly the declared body and never sees the garbage.
                done = await h.submit_and_finish()
                assert done["state"] == "done"
                assert h.chaos_count("server.oversize_body") == 1

        asyncio.run(scenario())

    def test_slow_loris_stall_only_delays(self, tmp_path):
        async def scenario():
            plan = _plan("server.slow_loris", extra_latency=0.02)
            async with _Harness(tmp_path, plan) as h:
                status, _h2, _b = await h.client.request("GET", "/healthz")
                assert status == 200
                assert h.chaos_count("server.slow_loris") == 1

        asyncio.run(scenario())


class TestBatchAndWalFaults:
    def test_executor_death_requeues_and_completes(self, tmp_path):
        async def scenario():
            plan = _plan("server.executor_death")
            async with _Harness(tmp_path, plan) as h:
                done = await h.submit_and_finish()
                assert done["state"] == "done"
                assert done["requeues"] == 1
                assert h.chaos_count("server.executor_death") == 1
                failed = h.server.metrics.counter("server.failed").value
                assert failed == 0

        asyncio.run(scenario())

    def test_unbounded_executor_death_fails_the_job(self, tmp_path):
        async def scenario():
            plan = _plan("server.executor_death", count=0)  # unlimited
            async with _Harness(tmp_path, plan) as h:
                done = await h.submit_and_finish()
                assert done["state"] == "failed"
                assert "executor died" in done["error"]

        asyncio.run(scenario())

    def test_wal_stall_delays_but_never_loses_admissions(self, tmp_path):
        async def scenario():
            plan = _plan("server.wal_stall", extra_latency=0.02)
            async with _Harness(
                tmp_path, plan, wal_path=tmp_path / "wal.jsonl"
            ) as h:
                done = await h.submit_and_finish()
                assert done["state"] == "done"
                assert h.chaos_count("server.wal_stall") == 1
                # The outcome append is fire-and-forget; give it a beat.
                counter = h.server.metrics.counter("server.wal.appends")
                for _ in range(100):
                    if counter.value >= 2:
                        break
                    await asyncio.sleep(0.01)
                assert counter.value >= 2  # admit + outcome both landed

        asyncio.run(scenario())


class TestCircuitBreaker:
    def test_opens_after_threshold_and_blocks(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        assert breaker.state == "closed"
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # still cooling down

    def test_half_open_admits_one_probe_then_recovers(self):
        # cooldown=0: an opened breaker is immediately half-open.
        breaker = CircuitBreaker(threshold=1, cooldown=0.0)
        breaker.record_failure()
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # second caller waits on the probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.0)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()  # probe failed: fresh cooldown
        assert breaker.allow()  # cooldown=0 so the next probe is due
        assert not breaker.allow()

    def test_client_keys_breakers_per_endpoint_family(self):
        client = HttpClient("127.0.0.1", 1)
        a = client.breaker("GET", "/v1/jobs/j000001-abcdef?wait=5")
        b = client.breaker("GET", "/v1/jobs/j000099-123456")
        c = client.breaker("POST", "/v1/submit")
        assert a is b
        assert a is not c
