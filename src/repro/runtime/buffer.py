"""The client-side global prefetch buffer (§III).

Prefetched blocks live in a buffer "collectively managed by all scheduler
threads" (modelled after Liao et al.'s MPI-IO collective caching).  The
runtime contract from the paper:

* a hit returns the data and *invalidates the entry* to make room;
* when the buffer is full, scheduler threads *stop fetching* until space
  frees up;
* entries are keyed per access (one prefetch, one consume).

Capacity is counted in blocks.  A restartable space signal wakes stalled
scheduler threads whenever an entry is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..sim.engine import Simulator
from ..sim.events import Signal

__all__ = ["EntryState", "BufferEntry", "GlobalBuffer"]


class EntryState(Enum):
    """Lifecycle of one prefetched entry."""

    FETCHING = "fetching"
    READY = "ready"
    CONSUMED = "consumed"
    #: Abandoned while the prefetch I/O was still in flight: the blocks
    #: stay reserved until the I/O lands (freeing them early would let the
    #: buffer oversubscribe its capacity for the remainder of the fetch).
    ABANDONED = "abandoned"


@dataclass
class BufferEntry:
    """One access's slot in the global buffer."""

    aid: int
    blocks: int
    state: EntryState
    ready: Signal  # fires when the data lands


class GlobalBuffer:
    """Block-capacity-bounded prefetch buffer shared by scheduler threads."""

    def __init__(self, sim: Simulator, capacity_blocks: int):
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1 block: {capacity_blocks}")
        self.sim = sim
        self.capacity_blocks = capacity_blocks
        self._entries: dict[int, BufferEntry] = {}
        self._used_blocks = 0
        self.space_freed = Signal("buffer.space", restartable=True)
        self.peak_used = 0
        self.total_prefetches = 0
        self.hits = 0
        self.misses = 0
        self.abandoned = 0
        self.abandoned_in_flight = 0
        self.reclaimed = 0
        self._tracer = sim.obs.tracer

    # ------------------------------------------------------------------
    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - self._used_blocks

    def has_room(self, blocks: int) -> bool:
        """Whether ``blocks`` more blocks fit right now."""
        return self._used_blocks + blocks <= self.capacity_blocks

    # ------------------------------------------------------------------
    # Producer side (scheduler threads)
    # ------------------------------------------------------------------
    def begin_fetch(self, aid: int, blocks: int) -> BufferEntry:
        """Reserve space for an access being prefetched.

        Caller must have checked :meth:`has_room`; reserving over capacity
        raises (scheduler threads must stall instead).
        """
        if aid in self._entries:
            raise ValueError(f"access {aid} already has a buffer entry")
        if not self.has_room(blocks):
            raise RuntimeError(
                f"buffer overflow: {blocks} blocks requested, "
                f"{self.free_blocks} free"
            )
        entry = BufferEntry(
            aid=aid,
            blocks=blocks,
            state=EntryState.FETCHING,
            ready=Signal(f"buffer.a{aid}.ready"),
        )
        self._entries[aid] = entry
        self._used_blocks += blocks
        self.peak_used = max(self.peak_used, self._used_blocks)
        self.total_prefetches += 1
        return entry

    def complete_fetch(self, aid: int) -> None:
        """The prefetch I/O finished; wake any consumer waiting on it.

        If the entry was abandoned mid-flight, the landing I/O is the
        moment its reservation actually frees: release the blocks and wake
        stalled scheduler threads instead of publishing the data.
        """
        entry = self._entries[aid]
        if entry.state is EntryState.ABANDONED:
            self.abandoned_in_flight -= 1
            entry.state = EntryState.CONSUMED
            self._used_blocks -= entry.blocks
            self.sim.fire(self.space_freed)
            self.space_freed.reset()
            return
        if entry.state is not EntryState.FETCHING:
            raise ValueError(f"access {aid} is not fetching ({entry.state})")
        entry.state = EntryState.READY
        if self._tracer.enabled:
            # Closes the "access.fetch" span the scheduler thread opened:
            # this record *is* the data-ready moment of the lifecycle.
            self._tracer.end("access.fetch", aid=aid, blocks=entry.blocks)
        self.sim.fire(entry.ready)

    # ------------------------------------------------------------------
    # Consumer side (application processes)
    # ------------------------------------------------------------------
    def lookup(self, aid: int) -> Optional[BufferEntry]:
        """The entry for an access, if the scheduler ever started it."""
        entry = self._entries.get(aid)
        if entry is not None and entry.state in (
            EntryState.FETCHING,
            EntryState.READY,
        ):
            return entry
        return None

    def consume(self, aid: int) -> None:
        """Hit: hand the data to the app and invalidate the entry
        ("the entry is invalidated to make space for the subsequent data
        prefetched by the scheduler thread")."""
        entry = self._entries.get(aid)
        if entry is None or entry.state is not EntryState.READY:
            raise ValueError(f"access {aid} is not ready to consume")
        entry.state = EntryState.CONSUMED
        self._used_blocks -= entry.blocks
        self.hits += 1
        # Wake stalled scheduler threads.
        self.sim.fire(self.space_freed)
        self.space_freed.reset()

    def abandon(self, aid: int) -> None:
        """Release an entry that will never be consumed (e.g. the app
        already read it synchronously).

        A READY entry frees its blocks immediately.  A still-FETCHING
        entry only *marks* itself abandoned: the reservation is released
        by :meth:`complete_fetch` when the in-flight I/O lands — freeing
        it here would transiently oversubscribe capacity and make the
        completion callback blow up on an already-consumed entry.
        """
        entry = self._entries.get(aid)
        if entry is None or entry.state in (
            EntryState.CONSUMED,
            EntryState.ABANDONED,
        ):
            return
        self.abandoned += 1
        if entry.state is EntryState.FETCHING:
            entry.state = EntryState.ABANDONED
            self.abandoned_in_flight += 1
            return
        entry.state = EntryState.CONSUMED
        self._used_blocks -= entry.blocks
        self.sim.fire(self.space_freed)
        self.space_freed.reset()

    def reclaim(self, aid: int) -> bool:
        """Re-publish an entry abandoned while its fetch was in flight.

        The degraded-mode counterpart of :meth:`abandon`: the scheduler
        thread's fetch watchdog abandons a slow prefetch (so the consumer
        falls back to an on-demand read), but if the consumer has not yet
        reached the access's slot the thread may *re-request* the entry —
        the I/O is still coming, its blocks are still reserved, and
        landing it as data beats throwing it away.  Only ABANDONED
        entries whose fetch has not landed can be reclaimed; the fetch
        then completes through :meth:`complete_fetch` as usual.

        Returns whether the entry was reclaimed.
        """
        entry = self._entries.get(aid)
        if entry is None or entry.state is not EntryState.ABANDONED:
            return False
        entry.state = EntryState.FETCHING
        self.abandoned_in_flight -= 1
        self.reclaimed += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GlobalBuffer({self._used_blocks}/{self.capacity_blocks} blocks, "
            f"{self.total_prefetches} prefetches)"
        )
