"""Tests for access signatures and the distance metric (§IV-B)."""

import pytest

from repro.core import (
    ZERO_DISTANCE_INVERSE,
    difference,
    distance,
    group_signature,
    inverse_distance,
    signature_bits,
    signature_from_nodes,
    similarity,
)


class TestBasics:
    def test_similarity_counts_shared_nodes(self):
        assert similarity(0b1010, 0b1100) == 1
        assert similarity(0b1010, 0b1010) == 2
        assert similarity(0b1010, 0b0101) == 0

    def test_difference_counts_differing_bits(self):
        assert difference(0b1010, 0b1100) == 2
        assert difference(0b1010, 0b1010) == 0
        assert difference(0b1010, 0b0101) == 4

    def test_distance_formula(self):
        n = 8
        g1, g2 = 0b1010, 0b1100
        assert distance(g1, g2, n) == n - 1 + 2

    def test_identical_signatures_have_minimal_distance(self):
        n = 16
        g = 0b101
        assert distance(g, g, n) == n - 2

    def test_disjoint_signatures(self):
        """If the number of different bits is n, the accesses touch
        disjoint node sets (paper: complementary signatures)."""
        n = 4
        g1, g2 = 0b0011, 0b1100
        assert difference(g1, g2) == n
        assert distance(g1, g2, n) == n + n

    def test_distance_symmetric(self):
        assert distance(0b0110, 0b1010, 8) == distance(0b1010, 0b0110, 8)

    def test_inverse_distance_special_case(self):
        # distance can be 0 only when both signatures cover every node.
        n = 3
        full = 0b111
        assert distance(full, full, n) == 0
        assert inverse_distance(full, full, n) == ZERO_DISTANCE_INVERSE

    def test_inverse_distance_regular(self):
        assert inverse_distance(0b01, 0b10, 2) == pytest.approx(1 / 4)


class TestGroupSignature:
    def test_or_of_signatures(self):
        assert group_signature([0b001, 0b010, 0b010]) == 0b011

    def test_empty_group(self):
        assert group_signature([]) == 0


class TestConversions:
    def test_signature_bits_order(self):
        # Bit i corresponds to I/O node i: eta_0 first.
        assert signature_bits(0b0101, 4) == [1, 0, 1, 0]

    def test_signature_from_nodes(self):
        assert signature_from_nodes([0, 2], 4) == 0b0101

    def test_signature_from_nodes_bounds(self):
        with pytest.raises(ValueError):
            signature_from_nodes([4], 4)
        with pytest.raises(ValueError):
            signature_from_nodes([-1], 4)

    def test_roundtrip(self):
        sig = signature_from_nodes([1, 9], 16)
        bits = signature_bits(sig, 16)
        assert [i for i, b in enumerate(bits) if b] == [1, 9]


class TestPaperFigure9:
    """The signatures of Figure 9 (16 I/O nodes)."""

    # A4 touches nodes 1 and 9; A6 touches 1, 2, 9, 10; A7 touches 0, 8.
    G4 = signature_from_nodes([1, 9], 16)
    G6 = signature_from_nodes([1, 2, 9, 10], 16)
    G7 = signature_from_nodes([0, 8], 16)

    def test_a4_subset_of_a6(self):
        assert similarity(self.G4, self.G6) == 2
        assert difference(self.G4, self.G6) == 2
        assert distance(self.G4, self.G6, 16) == 16

    def test_a4_disjoint_from_a7(self):
        assert similarity(self.G4, self.G7) == 0
        assert distance(self.G4, self.G7, 16) == 16 + 4

    def test_same_signature_accesses(self):
        # A2, A4, A9, A10 share the same signature in Figure 9.
        a2 = signature_from_nodes([1, 9], 16)
        assert distance(a2, self.G4, 16) == 14
