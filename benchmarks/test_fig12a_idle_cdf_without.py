"""Figure 12(a) — CDF of disk idle-period lengths without the scheme.

Paper shape: short idle periods dominate by count (on average ~86% of
periods are ≤100 ms in the paper; hf and madbench2 are the most
short-idle-heavy apps), and almost everything is ≤5 s by count with a
thin long tail.
"""

from repro.experiments import APPS, fig12a

from conftest import run_once


def test_fig12a_idle_cdf_without(benchmark, runner):
    result = run_once(benchmark, lambda: fig12a(runner))
    print("\n" + result.text)
    data = result.data
    for app in APPS:
        fractions = list(data[app].values())
        assert fractions == sorted(fractions), f"{app}: CDF not monotone"
    # Sub-second idles dominate by count on the short-idle apps.
    assert data["hf"][1_000] > 0.5
    assert data["madbench2"][1_000] > 0.5
    # A long tail exists: not everything is sub-second everywhere.
    avg_1s = sum(data[a][1_000] for a in APPS) / len(APPS)
    assert avg_1s < 0.98
    # The bulk of periods sit at or below tens of seconds.
    avg_50s = sum(data[a][50_000] for a in APPS) / len(APPS)
    assert avg_50s > 0.85
