#!/usr/bin/env python3
"""Visualize what the scheme does to the disks' power states.

Runs the ``hf`` workload under the history-based multi-speed policy with
and without the compiler scheme, then renders an ASCII Gantt chart of
every drive's power state over time and the per-node access-density
timeline of the compiled schedule.  The "with scheme" picture shows the
disks spending visibly more time at reduced speeds (digits) and in longer
unbroken quiet stretches.

Run:  python examples/visualize_power_states.py
"""

from repro import Session, make_policy
from repro.experiments import Runner, default_config
from repro.viz import access_density_timeline, drive_state_gantt

SCALE = 0.08
config = default_config(scale=SCALE)
runner = Runner(config)

compiled = runner.compilation("hf")
print("=" * 78)
print("The compiled schedule: where the accesses moved")
print("=" * 78)
print(access_density_timeline(compiled, width=70))

for with_scheme in (False, True):
    session = Session(
        runner.trace("hf"),
        config.disk_spec(multispeed=True),
        lambda: make_policy(
            "history", utilization_bound=config.history_utilization_bound
        ),
        config.session_config(),
        compile_result=compiled if with_scheme else None,
    )
    outcome = session.run()
    horizon = outcome.execution_time
    label = "WITH the scheme" if with_scheme else "WITHOUT the scheme"
    print()
    print("=" * 78)
    print(f"Drive power states {label} (history-based policy)")
    print("=" * 78)
    print(drive_state_gantt(outcome.drives, horizon, width=70))
    from repro.metrics import fleet_energy

    print(f"disk energy: {fleet_energy(outcome.drives, horizon):,.1f} J "
          f"over {horizon:.0f} s")
