"""Tests for the application models and the multi-app merger."""

import pytest

from repro.ir import trace_program
from repro.workloads import all_workloads, get_workload, jitter, merge_traces

APP_NAMES = ("hf", "sar", "astro", "apsi", "madbench2", "wupwise")
#: Registered but deliberately outside the paper's Table III corpus.
EXTRA_NAMES = ("sweep",)


class TestRegistry:
    def test_paper_six_first_then_extras(self):
        """The paper's six lead in paper order; extras follow sorted, so
        figure grids (which slice APPS) never silently grow."""
        names = [w.name for w in all_workloads()]
        assert names[:6] == list(APP_NAMES)
        assert names[6:] == sorted(EXTRA_NAMES)

    def test_get_workload(self):
        assert get_workload("hf").name == "hf"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("spec2049")

    def test_affinity_flags(self):
        """The polyhedral/profiling split the paper describes: scattered
        astro subscripts force the profiling tool."""
        flags = {w.name: w.affine for w in all_workloads()}
        assert flags["astro"] is False
        assert flags["hf"] is True
        assert flags["sar"] is True
        assert flags["apsi"] is True


@pytest.mark.parametrize("name", APP_NAMES + EXTRA_NAMES)
class TestEveryWorkload:
    def test_builds_and_traces(self, name):
        program = get_workload(name).build(n_processes=4, scale=0.1)
        trace = trace_program(program)
        assert trace.n_slots > 0
        assert all(p.n_slots > 0 for p in trace.processes)

    def test_block_subscripts_in_bounds(self, name):
        program = get_workload(name).build(n_processes=4, scale=0.1)
        trace = trace_program(program)
        for io in trace.all_ios():
            decl = program.files[io.file]
            assert 0 <= io.block
            assert io.block + io.blocks <= decl.n_blocks, (
                f"{name}: {io.file}[{io.block}+{io.blocks}] out of "
                f"{decl.n_blocks}"
            )

    def test_affinity_flag_matches_program(self, name):
        info = get_workload(name)
        program = info.build(n_processes=4, scale=0.1)
        assert program.is_affine == info.affine

    def test_has_reads_and_writes(self, name):
        program = get_workload(name).build(n_processes=4, scale=0.1)
        trace = trace_program(program)
        assert trace.reads()
        assert trace.writes()

    def test_scale_shrinks_work(self, name):
        small = trace_program(get_workload(name).build(4, scale=0.1))
        large = trace_program(get_workload(name).build(4, scale=0.3))
        assert large.n_slots > small.n_slots

    def test_deterministic_build(self, name):
        t1 = trace_program(get_workload(name).build(4, scale=0.1))
        t2 = trace_program(get_workload(name).build(4, scale=0.1))
        assert t1.processes[0].slot_costs == t2.processes[0].slot_costs
        assert [io.block for io in t1.all_ios()] == [
            io.block for io in t2.all_ios()
        ]

    def test_process_count_respected(self, name):
        program = get_workload(name).build(n_processes=6, scale=0.1)
        assert program.n_processes == 6


class TestJitter:
    def test_jitter_bounded(self):
        cost = jitter(2.0, 0.1, 42)
        values = [cost({"p": p, "i": i}) for p in range(4) for i in range(10)]
        assert all(1.8 <= v <= 2.2 for v in values)

    def test_jitter_varies(self):
        cost = jitter(2.0, 0.1, 42)
        values = {round(cost({"p": p, "i": 0}), 6) for p in range(10)}
        assert len(values) > 1

    def test_jitter_deterministic(self):
        a = jitter(2.0, 0.1, 1)
        b = jitter(2.0, 0.1, 1)
        env = {"p": 3, "i": 7}
        assert a(env) == b(env)

    def test_jitter_key_changes_stream(self):
        env = {"p": 3, "i": 7}
        assert jitter(2.0, 0.1, 1)(env) != jitter(2.0, 0.1, 2)(env)

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            jitter(1.0, 1.0)
        with pytest.raises(ValueError):
            jitter(1.0, -0.1)


class TestMergeTraces:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_processes_renumbered(self):
        a = trace_program(get_workload("sar").build(3, scale=0.1))
        b = trace_program(get_workload("hf").build(2, scale=0.1))
        merged = merge_traces([a, b])
        assert merged.program.n_processes == 5
        assert [p.process for p in merged.processes] == [0, 1, 2, 3, 4]

    def test_files_prefixed_disjointly(self):
        a = trace_program(get_workload("sar").build(2, scale=0.1))
        b = trace_program(get_workload("sar").build(2, scale=0.1))
        merged = merge_traces([a, b])
        names = set(merged.program.files)
        assert any(n.startswith("app0:") for n in names)
        assert any(n.startswith("app1:") for n in names)
        assert len(names) == 2 * len(a.program.files)

    def test_ios_preserved(self):
        a = trace_program(get_workload("sar").build(2, scale=0.1))
        b = trace_program(get_workload("hf").build(2, scale=0.1))
        merged = merge_traces([a, b])
        assert sum(len(p.ios) for p in merged.processes) == (
            sum(len(p.ios) for p in a.processes)
            + sum(len(p.ios) for p in b.processes)
        )

    def test_merged_trace_compiles_and_runs(self):
        from repro.core import CompilerOptions, SlackOptions, compile_schedule
        from repro.power import NoPowerManagement
        from repro.runtime import Session, SessionConfig
        from repro.storage import StripedFile, StripeMap
        from conftest import fast_spec

        a = trace_program(get_workload("sar").build(2, scale=0.05))
        b = trace_program(get_workload("hf").build(2, scale=0.05))
        merged = merge_traces([a, b])
        cfg = SessionConfig(n_ionodes=4, stripe_size=64 * 1024)
        smap = StripeMap(cfg.stripe_size, cfg.n_ionodes)
        files = {
            name: StripedFile(name, decl.size_bytes)
            for name, decl in merged.program.files.items()
        }
        compiled = compile_schedule(
            merged.program, smap, files,
            CompilerOptions(delta=5, slack=SlackOptions(max_slack=20)),
            trace=merged,
        )
        session = Session(merged, fast_spec(), lambda: NoPowerManagement(),
                          cfg, compile_result=compiled)
        result = session.run()
        assert all(t >= 0 for t in result.client_finish_times)
