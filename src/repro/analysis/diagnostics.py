"""Diagnostics engine for the static schedule verifier.

Every checker in :mod:`repro.analysis` reports through this module: a
:class:`Diagnostic` carries a *stable code* (``SCHED001``, ``RACE001``,
``CAP001``, ``LINT001``, ``ENERGY001``, …), a :class:`Severity`, a human
message and a :class:`SourceAnchor` tying the finding back to the schedule
artifact (process, slot, access id, file/block).  A :class:`Report`
aggregates diagnostics and renders them as text (CLI) or JSON (tooling).

Codes are append-only: once published a code keeps its meaning forever,
so tests and downstream tooling may match on them exactly.

The *code registry* is the single source of truth for every published
code.  Checkers declare their codes next to their implementation via
:func:`register_codes`, which enforces the format (``FAMILY`` + three
digits), rejects collisions (a code can never be registered twice — the
new ``ENERGY``/``OCC``/``PHASE`` families cannot reuse or shadow
``SCHED``/``RACE``/``CAP``/``LINT`` codes) and records which module owns
each code.  ``CODES`` remains the public read view; importing
:mod:`repro.analysis` populates it fully.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

__all__ = [
    "Severity",
    "SourceAnchor",
    "Diagnostic",
    "Report",
    "CODES",
    "register_codes",
    "code_families",
    "code_owner",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; higher is worse (sortable)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


# ----------------------------------------------------------------------
# Code registry (single source of truth)
# ----------------------------------------------------------------------

#: Registry of every stable diagnostic code with its one-line summary.
#: Append-only — codes never change meaning or get reused.  Populated by
#: :func:`register_codes` calls next to each checker; do not write to it
#: directly.
CODES: dict[str, str] = {}

#: code → owning module (for collision error messages and audits).
_OWNERS: dict[str, str] = {}

_CODE_RE = re.compile(r"^([A-Z]+)(\d{3})$")


def register_codes(owner: str, codes: Mapping[str, str]) -> None:
    """Publish diagnostic codes into the shared registry.

    ``owner`` names the registering module (``repro.analysis.energy``);
    every code must match ``FAMILY`` + three digits, carry a non-empty
    summary, and be globally fresh — re-registering an existing code is a
    collision and raises, even from the code's own family.  Calling twice
    with the *identical* (owner, code, summary) triple is idempotent so
    module reloads stay harmless.
    """
    for code, summary in codes.items():
        match = _CODE_RE.match(code)
        if not match:
            raise ValueError(
                f"{owner}: malformed diagnostic code {code!r} "
                "(expected FAMILY + 3 digits, e.g. ENERGY001)"
            )
        if not summary or not summary.strip():
            raise ValueError(f"{owner}: code {code} has an empty summary")
        if code in CODES:
            if _OWNERS[code] == owner and CODES[code] == summary:
                continue  # idempotent re-import
            raise ValueError(
                f"{owner}: diagnostic code {code} collides with the one "
                f"registered by {_OWNERS[code]} ({CODES[code]!r})"
            )
        CODES[code] = summary
        _OWNERS[code] = owner


def code_families() -> dict[str, list[str]]:
    """family → sorted list of its registered codes."""
    out: dict[str, list[str]] = {}
    for code in sorted(CODES):
        match = _CODE_RE.match(code)
        assert match is not None  # enforced at registration
        out.setdefault(match.group(1), []).append(code)
    return out


def code_owner(code: str) -> str:
    """The module that registered ``code``."""
    if code not in _OWNERS:
        raise ValueError(f"unknown diagnostic code {code!r}")
    return _OWNERS[code]


@dataclass(frozen=True)
class SourceAnchor:
    """Where in the schedule/IR a diagnostic points.

    All fields are optional; checkers fill in whatever identifies the
    finding most precisely (an access id for schedule violations, a
    process pair for races, a file for IR lint, a source path plus line
    number — carried in ``block`` — for the determinism lint).
    """

    process: Optional[int] = None
    slot: Optional[int] = None
    aid: Optional[int] = None
    file: Optional[str] = None
    block: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            k: v
            for k, v in (
                ("process", self.process),
                ("slot", self.slot),
                ("aid", self.aid),
                ("file", self.file),
                ("block", self.block),
            )
            if v is not None
        }

    def __str__(self) -> str:
        parts = []
        if self.process is not None:
            parts.append(f"p{self.process}")
        if self.slot is not None:
            parts.append(f"slot {self.slot}")
        if self.aid is not None:
            parts.append(f"a{self.aid}")
        if self.file is not None:
            loc = self.file
            if self.block is not None:
                loc += f"[{self.block}]"
            parts.append(loc)
        return ":".join(parts) if parts else "<schedule>"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static checker."""

    code: str
    severity: Severity
    message: str
    anchor: SourceAnchor = field(default_factory=SourceAnchor)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "summary": CODES[self.code],
            "message": self.message,
            "anchor": self.anchor.as_dict(),
        }

    def render(self) -> str:
        return f"{self.severity.label}[{self.code}] {self.anchor}: {self.message}"


class Report:
    """An ordered collection of diagnostics with renderers."""

    def __init__(self, diagnostics: Optional[list[Diagnostic]] = None):
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ------------------------------------------------------------------
    def with_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.with_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity is Severity.WARNING for d in self.diagnostics)

    def by_code(self, code: str) -> list[Diagnostic]:
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def counts(self) -> dict[str, int]:
        """code → occurrence count, sorted by code."""
        out: dict[str, int] = {}
        for d in sorted(self.diagnostics, key=lambda d: d.code):
            out[d.code] = out.get(d.code, 0) + 1
        return out

    # ------------------------------------------------------------------
    def sorted(self) -> list[Diagnostic]:
        """Worst first, then by code and anchor for stable output."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.code, str(d.anchor)),
        )

    def render_text(self, title: str = "schedule verification") -> str:
        lines = [f"== {title} =="]
        for diag in self.sorted():
            lines.append(diag.render())
        lines.append(
            f"-- {len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.with_severity(Severity.INFO))} note(s)"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "diagnostics": [d.as_dict() for d in self.sorted()],
            "counts": self.counts(),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "clean": not self.has_errors,
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Report({len(self.diagnostics)} diagnostics, "
            f"{len(self.errors)} errors)"
        )


# ----------------------------------------------------------------------
# Core verifier code families.  SCHED/RACE/CAP/LINT predate the registry
# mechanism and their checkers share this module's import cycle, so their
# declarations stay here; new families register next to their checkers
# (see repro.analysis.energy and repro.analysis.determinism).
# ----------------------------------------------------------------------
register_codes(
    "repro.analysis.schedule_check",
    {
        "SCHED001": "scheduled slot lies outside the access's slack window",
        "SCHED002": "scheduled slot overruns the slot horizon",
        "SCHED003": "access appears more than once in the schedule book",
        "SCHED004": "traced read has no scheduled access (unscheduled)",
        "SCHED005": "access filed under the wrong process table",
        "SCHED006": "recorded producer disagrees with the dependence oracle",
        "SCHED007": "prefetch ordered at/before its producing write (hazard)",
        "SCHED008": "scheduled access matches no traced read (phantom)",
    },
)
register_codes(
    "repro.analysis.races",
    {
        "RACE001": "producer-wait cycle: guaranteed cross-process deadlock",
        "RACE002": "unbounded wait: producer never reaches the awaited slot",
        "RACE003": "batching stalls the issue window on a producer-wait",
    },
)
register_codes(
    "repro.analysis.capacity",
    {
        "CAP001": "single access larger than the whole prefetch buffer",
        "CAP002": "peak live prefetched blocks exceed buffer capacity",
        "LINT001": "dead write: block is never read after being written",
        "LINT002": "declared file is never accessed by the program",
    },
)
