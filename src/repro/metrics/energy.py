"""Energy metrics over finalized drive timelines.

The paper reports *normalized energy consumption* (policy ÷ default
scheme) and *reduction in energy consumption* (1 − normalized).  Metrics
here integrate over a clipped horizon — the application's execution window
— so trailing drain activity doesn't skew policy comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disk.drive import Drive
from ..disk.power import DiskPowerModel, EnergyBreakdown
from ..disk import states as st
from ..sim.trace import Interval

__all__ = [
    "energy_until",
    "breakdown_until",
    "fleet_energy",
    "idle_periods_until",
    "EnergyComparison",
]


def _clipped_intervals(drive: Drive, horizon: float):
    for iv in drive.timeline.intervals():
        if iv.start >= horizon:
            break
        end = min(iv.end, horizon)
        if end > iv.start:
            yield Interval(iv.start, end, iv.state)


def energy_until(drive: Drive, horizon: float) -> float:
    """Joules consumed by one drive in ``[0, horizon]``."""
    model = drive.power_model
    return sum(
        model.power_of(iv.state) * iv.duration
        for iv in _clipped_intervals(drive, horizon)
    )


def breakdown_until(drive: Drive, horizon: float) -> EnergyBreakdown:
    """Per-state-family joules in ``[0, horizon]``."""
    model = DiskPowerModel(drive.spec)
    result = EnergyBreakdown()
    for iv in _clipped_intervals(drive, horizon):
        joules = model.power_of(iv.state) * iv.duration
        base = st.base_state(iv.state)
        if base in (st.ACTIVE_READ, st.ACTIVE_WRITE):
            result.active += joules
        elif base == st.SEEK:
            result.seek += joules
        elif base == st.IDLE:
            result.idle += joules
        elif base == st.STANDBY:
            result.standby += joules
        elif base == st.SPIN_UP:
            result.spin_up += joules
        elif base == st.SPIN_DOWN:
            result.spin_down += joules
        else:
            result.rpm_change += joules
    return result


def fleet_energy(drives: list[Drive], horizon: float) -> float:
    """Total joules over a set of drives in ``[0, horizon]``."""
    return sum(energy_until(d, horizon) for d in drives)


def idle_periods_until(drive: Drive, horizon: float) -> list[float]:
    """Idle-period lengths clipped to the execution window."""
    out = []
    for iv in drive.timeline.merged_periods(st.is_idle_family):
        if iv.start >= horizon:
            break
        end = min(iv.end, horizon)
        if end > iv.start:
            out.append(end - iv.start)
    return out


@dataclass(frozen=True)
class EnergyComparison:
    """One policy's energy versus the default scheme."""

    policy: str
    energy_joules: float
    baseline_joules: float

    @property
    def normalized(self) -> float:
        """Figure 12(c)/(d): policy energy ÷ default energy."""
        if self.baseline_joules == 0:
            return 1.0
        return self.energy_joules / self.baseline_joules

    @property
    def reduction(self) -> float:
        """Figures 13(c)/(d), 14(a): 1 − normalized."""
        return 1.0 - self.normalized
