"""Deterministic fault injection and degraded-mode recovery.

See :mod:`repro.faults.plan` for the fault taxonomy and the determinism
contract, and DESIGN.md §12 for the recovery semantics.
"""

from .injector import (
    DriveFaultState,
    FaultCounters,
    FaultInjector,
    LinkFaultState,
    stream_rng,
)
from .plan import (
    DISK_KINDS,
    FAULT_KINDS,
    NODE_KINDS,
    SERVER_KINDS,
    FaultEvent,
    FaultPlan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)

__all__ = [
    "FAULT_KINDS",
    "DISK_KINDS",
    "NODE_KINDS",
    "SERVER_KINDS",
    "FaultEvent",
    "FaultPlan",
    "load_plan",
    "save_plan",
    "plan_to_dict",
    "plan_from_dict",
    "FaultInjector",
    "FaultCounters",
    "DriveFaultState",
    "LinkFaultState",
    "stream_rng",
]
