"""Static schedule verification and IR lint (``repro verify`` / ``repro
lint``).

The paper's correctness argument rests on two invariants the rest of this
codebase otherwise only *assumes*: every relocated access stays inside its
access slack, and no consumer is prefetched before its cross-process
producer has written.  This package checks both — plus runtime
realizability (wait-for deadlocks, buffer capacity) and IR hygiene —
statically, from a :class:`~repro.ir.profiling.AccessTrace` and a
:class:`~repro.core.table.ScheduleBook`, without ever running the
simulator.

Layout:

* :mod:`~repro.analysis.diagnostics` — stable-coded :class:`Diagnostic`
  findings, severities, source anchors, text/JSON :class:`Report`;
* :mod:`~repro.analysis.schedule_check` — slack windows, horizons,
  duplicates/unscheduled accesses, producer agreement (``SCHED*``);
* :mod:`~repro.analysis.races` — producer-wait graph, deadlock cycles,
  unbounded waits under ``min_lead``/``batch_slots`` (``RACE*``);
* :mod:`~repro.analysis.capacity` — planned buffer occupancy (``CAP*``)
  and IR lint (``LINT*``);
* :mod:`~repro.analysis.verify` — the orchestrating entry points and the
  :class:`RuntimeModel` the checks are evaluated against;
* :mod:`~repro.analysis.energy` — abstract-interpretation energy bounds:
  certified [lower, upper] envelopes per configuration, power-state
  residency intervals, DES cross-validation (``ENERGY*``/``OCC*``/
  ``PHASE*``);
* :mod:`~repro.analysis.determinism` — AST lint for wall-clock reads,
  unseeded randomness, and unsorted directory listings (``LINT1xx``).
"""

from .capacity import CapacityProfile, analyze_capacity, lint_trace
from .determinism import lint_determinism, lint_source
from .diagnostics import CODES, Diagnostic, Report, Severity, SourceAnchor
from .races import WaitEdge, build_wait_graph, detect_races
from .schedule_check import check_book, oracle_writer_table
from .verify import (
    RuntimeModel,
    ScheduleVerificationError,
    capacity_profile,
    lint_program,
    verify_schedule,
)

# Imported last: energy reaches into core/ir/storage layers that
# themselves import repro.analysis.diagnostics at module load.
from .energy import (  # noqa: E402
    CORPUS_POLICIES,
    POLICY_CLASSES,
    DiskResidency,
    EnergyAnalysis,
    EnergyEnvelope,
    Interval,
    analyze_energy,
    check_envelope,
    widen_envelope,
)

__all__ = [
    "CODES",
    "Severity",
    "SourceAnchor",
    "Diagnostic",
    "Report",
    "check_book",
    "oracle_writer_table",
    "WaitEdge",
    "build_wait_graph",
    "detect_races",
    "CapacityProfile",
    "analyze_capacity",
    "capacity_profile",
    "lint_trace",
    "RuntimeModel",
    "ScheduleVerificationError",
    "verify_schedule",
    "lint_program",
    "lint_determinism",
    "lint_source",
    "Interval",
    "EnergyEnvelope",
    "DiskResidency",
    "EnergyAnalysis",
    "analyze_energy",
    "check_envelope",
    "widen_envelope",
    "POLICY_CLASSES",
    "CORPUS_POLICIES",
]
