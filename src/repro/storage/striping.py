"""File striping across I/O nodes (PVFS-style round-robin).

Each file is divided into fixed-size *stripes* distributed round-robin over
the I/O nodes (Figure 1).  The map from a byte extent to the set of I/O
nodes it touches is what the compiler uses to build access *signatures*
(§IV-B), so this module is shared by the simulation substrate and the
scheduling front end.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["StripedFile", "StripeMap", "Extent", "plan_layout"]


@dataclass(frozen=True)
class Extent:
    """A contiguous byte range on one I/O node's local address space."""

    node: int
    node_offset: int
    size: int


@dataclass(frozen=True)
class StripedFile:
    """A file striped over the I/O nodes.

    ``start_node`` rotates the round-robin so different files decorrelate
    (PVFS distributes each file starting at a chosen node); by default it
    is derived from a stable hash of the name.  ``base_row`` is the file's
    starting *stripe row* in each node's local byte stream — distinct
    files must occupy disjoint node-local regions (the file system
    allocates these; see :meth:`ParallelFileSystem.create_file`).
    """

    name: str
    size: int
    start_node: int = -1  # -1: derive from name hash
    base_row: int = 0

    def resolved_start(self, n_nodes: int) -> int:
        if self.start_node >= 0:
            return self.start_node % n_nodes
        return zlib.crc32(self.name.encode()) % n_nodes

    def rows(self, stripe_size: int, n_nodes: int) -> int:
        """Stripe rows this file occupies on each node."""
        stripes = -(-self.size // stripe_size)
        return -(-stripes // n_nodes)


def plan_layout(
    sizes: "dict[str, int]", stripe_size: int, n_nodes: int
) -> dict[str, StripedFile]:
    """The striped-file layout :meth:`ParallelFileSystem.create_file`
    would allocate for ``sizes`` registered in iteration order.

    Pure function of the inputs — the static analyzer uses it to reason
    about node-local block identity (which cache blocks alias) without
    instantiating the file system.  Must mirror ``create_file``'s
    sequential base-row allocation exactly; a divergence makes the
    analyzer reason about a different disk layout than the one simulated
    (guarded by a test).
    """
    out: dict[str, StripedFile] = {}
    base_row = 0
    for name, size in sizes.items():
        file = StripedFile(name, size, base_row=base_row)
        out[name] = file
        base_row += file.rows(stripe_size, n_nodes)
    return out


class StripeMap:
    """Round-robin stripe → I/O node mapping for a fixed cluster shape."""

    def __init__(self, stripe_size: int, n_nodes: int):
        if stripe_size <= 0:
            raise ValueError(f"stripe_size must be positive: {stripe_size}")
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive: {n_nodes}")
        self.stripe_size = stripe_size
        self.n_nodes = n_nodes

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def node_of_stripe(self, file: StripedFile, stripe_index: int) -> int:
        """The I/O node holding ``stripe_index`` of ``file``."""
        return (file.resolved_start(self.n_nodes) + stripe_index) % self.n_nodes

    def map_extent(self, file: StripedFile, offset: int, size: int) -> list[Extent]:
        """Split a byte extent of ``file`` into per-node extents.

        ``node_offset`` packs each node's stripes contiguously — stripe *k*
        of the file lands at local offset ``(k // n_nodes) * stripe_size``
        on its node — which is how PVFS I/O servers lay out bstreams.
        Adjacent extents on the same node are coalesced.
        """
        if offset < 0 or size < 0:
            raise ValueError(f"bad extent: offset={offset}, size={size}")
        if offset + size > file.size:
            raise ValueError(
                f"extent [{offset}, {offset + size}) exceeds file "
                f"{file.name!r} of size {file.size}"
            )
        extents: list[Extent] = []
        cursor = offset
        remaining = size
        while remaining > 0:
            stripe_index = cursor // self.stripe_size
            within = cursor % self.stripe_size
            chunk = min(self.stripe_size - within, remaining)
            node = self.node_of_stripe(file, stripe_index)
            local = (
                file.base_row + stripe_index // self.n_nodes
            ) * self.stripe_size + within
            if (
                extents
                and extents[-1].node == node
                and extents[-1].node_offset + extents[-1].size == local
            ):
                prev = extents.pop()
                extents.append(Extent(node, prev.node_offset, prev.size + chunk))
            else:
                extents.append(Extent(node, local, chunk))
            cursor += chunk
            remaining -= chunk
        return extents

    def nodes_of_extent(self, file: StripedFile, offset: int, size: int) -> set[int]:
        """The set of I/O nodes a byte extent touches."""
        return {e.node for e in self.map_extent(file, offset, size)}

    def signature(self, file: StripedFile, offset: int, size: int) -> int:
        """Bitmask signature g = [η₀ η₁ … η_{n−1}] of the extent (§IV-B):
        bit *i* is set iff I/O node *i* is visited by the access."""
        sig = 0
        for node in self.nodes_of_extent(file, offset, size):
            sig |= 1 << node
        return sig

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StripeMap(stripe_size={self.stripe_size}, n_nodes={self.n_nodes})"
