"""Parallel experiment execution engine.

:class:`ExperimentExecutor` fans a grid of :class:`RunPoint`\\ s out over a
``ProcessPoolExecutor`` and merges the results with an optional
content-addressed :class:`~repro.exec.cache.ResultCache`:

1. every point is first resolved against the cache in the parent (a hit
   costs one JSON read, no simulation, no worker dispatch);
2. the misses are simulated — in-process for ``jobs <= 1``, otherwise on
   the pool, where each worker keeps one process-global
   :class:`~repro.experiments.runner.Runner` so traces and compilations
   are built once per *worker*, not once per run;
3. fresh results are written back to the cache (atomic, content-addressed,
   so concurrent writers are safe).

The simulation kernel is deterministic (seeded tie-breaks, ordered event
heap), so a parallel sweep returns bit-identical metrics to a serial one;
``tests/test_exec_executor.py`` locks that in.

Scheme runs are gated by the static verifier (PR 1) before simulation:
a worker whose schedule has error diagnostics raises
:class:`VerifyFailure`, which the parent re-raises immediately after
canceling the remaining queue — a clear top-level error, not a hung pool.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..experiments.config import ExperimentConfig
from ..experiments.runner import Runner, RunResult
from ..obs.base import Observability
from ..obs.metrics import (
    MetricsRegistry,
    merge_snapshots,
    read_snapshot,
    write_snapshot,
)
from .cache import ResultCache, point_digest

__all__ = [
    "RunPoint",
    "VerifyFailure",
    "ExecStats",
    "ExperimentExecutor",
    "merge_metrics_dir",
]


@dataclass(frozen=True)
class RunPoint:
    """One cell of the experiment grid."""

    workload: str
    policy: str
    scheme: bool
    config: ExperimentConfig

    def label(self) -> str:
        tag = "scheme" if self.scheme else "plain"
        return f"{self.workload}/{self.policy}/{tag}"


class VerifyFailure(RuntimeError):
    """Static schedule verification failed for a grid point.

    Carries only strings so it pickles cleanly across the process pool.
    """

    def __init__(self, label: str, report_text: str):
        super().__init__(
            f"schedule verification failed for {label}:\n{report_text}"
        )
        self.label = label
        self.report_text = report_text

    def __reduce__(self):
        return (VerifyFailure, (self.label, self.report_text))


def execute_point(
    runner: Runner,
    point: RunPoint,
    verify: bool = True,
    obs: Optional[Observability] = None,
) -> RunResult:
    """Verify (scheme runs) then simulate one grid point on ``runner``.

    With an enabled ``obs`` the point runs instrumented (never from the
    result cache — cached entries carry no telemetry).
    """
    cfg = point.config
    if verify and point.scheme:
        from ..analysis import RuntimeModel, verify_schedule

        compiled = runner.compilation(point.workload, cfg)
        report = verify_schedule(
            compiled.trace,
            compiled.book,
            runtime=RuntimeModel.from_session_config(cfg.session_config()),
            granularity=cfg.granularity,
            include_lint=False,
        )
        if report.has_errors:
            raise VerifyFailure(
                point.label(), report.render_text(title=point.label())
            )
    if obs is not None and obs.enabled:
        return runner.run_instrumented(
            point.workload, point.policy, point.scheme, obs, config=cfg
        )
    return runner.run(
        point.workload, point.policy, point.scheme, config=cfg
    )


def metrics_path_for(metrics_dir: Union[str, Path], point: RunPoint) -> Path:
    """Per-point snapshot file, named by the point's content digest so
    concurrent workers never collide and reruns overwrite in place."""
    digest = point_digest(
        point.config, point.workload, point.policy, point.scheme
    )
    return Path(metrics_dir) / f"{digest}.metrics.json"


def merge_metrics_dir(metrics_dir: Union[str, Path]) -> dict:
    """Merge every per-point snapshot under ``metrics_dir`` into one.

    Files are read in sorted-name order, but the merge is commutative, so
    worker completion order can never change the result.
    """
    paths = sorted(Path(metrics_dir).glob("*.metrics.json"))
    return merge_snapshots(read_snapshot(p) for p in paths)


# ----------------------------------------------------------------------
# Worker side.  One Runner per worker process: traces and compilations are
# memoized across every point the worker serves (the memo keys include the
# relevant config fields, so sweep points share their workload trace).
# ----------------------------------------------------------------------
_WORKER_RUNNER: Optional[Runner] = None


def _worker_run(
    point: RunPoint, verify: bool, metrics_dir: Optional[str] = None
) -> RunResult:
    global _WORKER_RUNNER
    if _WORKER_RUNNER is None:
        _WORKER_RUNNER = Runner(point.config)
    obs = None
    if metrics_dir is not None:
        obs = Observability(metrics=MetricsRegistry())
    result = execute_point(_WORKER_RUNNER, point, verify=verify, obs=obs)
    if obs is not None:
        write_snapshot(
            obs.metrics.snapshot(), metrics_path_for(metrics_dir, point)
        )
    return result


@dataclass
class ExecStats:
    """What one :meth:`ExperimentExecutor.run_points` call actually did."""

    points: int = 0
    cache_hits: int = 0
    simulated: int = 0

    def merged(self, other: "ExecStats") -> "ExecStats":
        return ExecStats(
            points=self.points + other.points,
            cache_hits=self.cache_hits + other.cache_hits,
            simulated=self.simulated + other.simulated,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
        }


class ExperimentExecutor:
    """Cache-aware, optionally parallel driver for a grid of run points."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        verify: bool = True,
        metrics_dir: Optional[Union[str, Path]] = None,
        trace_path: Optional[Union[str, Path]] = None,
        trace_detail: bool = False,
    ):
        """``metrics_dir`` makes every simulated point write a per-point
        metrics snapshot (digest-named, safe under parallel workers);
        merge with :func:`merge_metrics_dir`.  ``trace_path`` streams
        span events for every point into one JSONL file — tracing forces
        the misses serial, because interleaving concurrent runs into one
        ordered stream would be nondeterministic.  ``trace_detail`` adds
        per-operation records (MPI-IO calls, disk requests, network
        transfers, I/O-node ops) to the lifecycle trace.  Either option also disables
        result-cache *reads* (a cache hit would produce no telemetry);
        fresh results are still written back.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.verify = verify
        self.metrics_dir = (
            str(metrics_dir) if metrics_dir is not None else None
        )
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.trace_detail = trace_detail
        self.stats = ExecStats()

    @property
    def observed(self) -> bool:
        """Whether this executor emits telemetry for the points it runs."""
        return self.metrics_dir is not None or self.trace_path is not None

    # ------------------------------------------------------------------
    def run_points(
        self, points: Iterable[RunPoint]
    ) -> dict[RunPoint, RunResult]:
        """Resolve every point (cache, then simulate); returns point→result.

        Duplicate points are resolved once.  Results are deterministic and
        independent of ``jobs``.
        """
        results, misses = self.resolve_cached(points)
        if misses:
            serial = (
                self.jobs <= 1
                or len(misses) == 1
                or self.trace_path is not None
            )
            if serial:
                self._run_serial(misses, results)
            else:
                self._run_parallel(misses, results)
            for point in misses:
                if point in results:
                    self.store_result(point, results[point])
            self.stats.simulated += len(misses)
        return results

    # ------------------------------------------------------------------
    # Building blocks shared with the campaign supervisor
    # (:mod:`repro.exec.supervise`), which replaces the one-shot
    # parallel pass below with a retrying, journaling one.
    # ------------------------------------------------------------------
    def resolve_cached(
        self, points: Iterable[RunPoint]
    ) -> tuple[dict[RunPoint, RunResult], list[RunPoint]]:
        """Dedupe ``points`` and resolve them against the cache.

        Returns ``(results, misses)``; updates ``stats.points`` and
        ``stats.cache_hits``.  Observed executors never read the cache
        (a hit would carry no telemetry).
        """
        unique: list[RunPoint] = []
        seen: set[RunPoint] = set()
        for point in points:
            if point not in seen:
                seen.add(point)
                unique.append(point)

        results: dict[RunPoint, RunResult] = {}
        misses: list[RunPoint] = []
        for point in unique:
            cached = None
            if self.cache is not None and not self.observed:
                cached = self.cache.lookup(
                    point.config, point.workload, point.policy, point.scheme
                )
            if cached is not None:
                results[point] = cached
                self.stats.cache_hits += 1
            else:
                misses.append(point)
        self.stats.points += len(unique)
        return results, misses

    def store_result(self, point: RunPoint, result: RunResult) -> None:
        """Persist one fresh result (no-op without a cache)."""
        if self.cache is not None:
            self.cache.store(
                point.config, point.workload, point.policy, point.scheme,
                result,
            )

    def open_tracer(self):
        """The serial-pass tracer, or None when tracing is off."""
        if self.trace_path is None:
            return None
        from ..obs.tracer import JsonlTracer

        return JsonlTracer(self.trace_path, detail=self.trace_detail)

    def point_observability(
        self, tracer, point: RunPoint
    ) -> Optional[Observability]:
        """The per-point observability context for a serial pass."""
        if not self.observed:
            return None
        registry = (
            MetricsRegistry() if self.metrics_dir is not None else None
        )
        if tracer is not None:
            tracer.set_context(point=point.label())
        return Observability(tracer=tracer, metrics=registry)

    def write_point_metrics(
        self, obs: Optional[Observability], point: RunPoint
    ) -> None:
        """Flush one point's metrics snapshot (no-op without metrics)."""
        if obs is not None and obs.metrics is not None:
            write_snapshot(
                obs.metrics.snapshot(),
                metrics_path_for(self.metrics_dir, point),
            )

    def _run_serial(
        self, misses: Sequence[RunPoint], results: dict[RunPoint, RunResult]
    ) -> None:
        runner = Runner(misses[0].config)
        tracer = self.open_tracer()
        try:
            for point in misses:
                obs = self.point_observability(tracer, point)
                results[point] = execute_point(
                    runner, point, verify=self.verify, obs=obs
                )
                self.write_point_metrics(obs, point)
        finally:
            if tracer is not None:
                tracer.close()

    def _run_parallel(
        self, misses: Sequence[RunPoint], results: dict[RunPoint, RunResult]
    ) -> None:
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(misses)))
        try:
            futures = {
                pool.submit(
                    _worker_run, point, self.verify, self.metrics_dir
                ): point
                for point in misses
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            error = None
            completed: list[RunPoint] = []
            for future in done:
                exc = future.exception()
                if exc is not None:
                    if error is None:
                        error = exc
                    continue
                point = futures[future]
                results[point] = future.result()
                completed.append(point)
            if error is not None:
                # Siblings that finished before the failure keep their
                # results: they stay in ``results`` and go to the cache
                # now (run_points only stores on clean returns), so a
                # partial campaign is never silently thrown away.
                for point in completed:
                    self.store_result(point, results[point])
                for future in not_done:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise error
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()

    # ------------------------------------------------------------------
    def warm_runner(
        self, runner: Runner, points: Iterable[RunPoint]
    ) -> dict[RunPoint, RunResult]:
        """Resolve ``points`` and seed them into ``runner``'s memo table.

        Figure drivers then find every grid cell already materialized and
        never fall back to in-process simulation.
        """
        results = self.run_points(points)
        for point, result in results.items():
            runner.seed_result(
                point.workload, point.policy, point.scheme, point.config,
                result,
            )
        return results
