"""Ablation: slot granularity *d* (§IV-A, last paragraph).

The paper coarsens very large loops by treating *d* iterations as one
scheduling unit "to reduce synchronization overhead between the scheduler
thread and the application process as well as the running time of our
scheduling algorithms".  This bench quantifies the trade: compile time
falls with *d* while the energy result stays close, degrading only when
*d* gets so coarse the schedule loses placement freedom.
"""

import time

from repro.core import CompilerOptions, SlackOptions, compile_schedule
from repro.experiments import default_config
from repro.ir import trace_program
from repro.metrics import fleet_energy, idle_periods_until
from repro.power import HistoryBasedMultiSpeed
from repro.runtime import Session
from repro.storage import StripedFile, StripeMap
from repro.workloads import get_workload

from conftest import run_once


def test_ablation_granularity(benchmark):
    cfg = default_config()
    program = get_workload("hf").build(cfg.n_clients, cfg.workload_scale)
    smap = StripeMap(cfg.stripe_size, cfg.n_ionodes)

    def run():
        results = {}
        for d in (1, 2, 4):
            trace = trace_program(program, granularity=d)
            files = {
                name: StripedFile(name, decl.size_bytes)
                for name, decl in trace.program.files.items()
            }
            started = time.perf_counter()
            compiled = compile_schedule(
                program, smap, files,
                CompilerOptions(
                    delta=max(cfg.delta // d, 1),
                    theta=cfg.theta,
                    granularity=d,
                    slack=SlackOptions(max_slack=max(cfg.max_slack // d, 1)),
                ),
                trace=trace,
            )
            compile_seconds = time.perf_counter() - started
            session = Session(
                trace,
                cfg.disk_spec(multispeed=True),
                lambda: HistoryBasedMultiSpeed(
                    utilization_bound=cfg.history_utilization_bound
                ),
                cfg.session_config(),
                compile_result=compiled,
            )
            outcome = session.run()
            horizon = outcome.execution_time
            results[d] = {
                "compile_s": compile_seconds,
                "energy": fleet_energy(outcome.drives, horizon),
                "slots": trace.n_slots,
            }
        return results

    results = run_once(benchmark, run)
    for d, row in results.items():
        print(f"d={d}: slots={row['slots']:5d}  "
              f"compile={row['compile_s']:6.2f}s  "
              f"energy={row['energy']:10.1f} J")
    # Coarser granularity shrinks the scheduling problem...
    assert results[4]["slots"] < results[1]["slots"]
    assert results[4]["compile_s"] <= results[1]["compile_s"] * 1.1
    # ...without destroying the energy result (within 25%).
    assert results[4]["energy"] <= results[1]["energy"] * 1.25
