"""Smoke test: every example script runs in-process and exits cleanly.

Examples are living documentation — they rot silently when APIs move.
Running them under ``runpy`` (same interpreter, real imports, stdout
captured) keeps them honest without the cost of subprocess startup.
"""

import contextlib
import io
import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert SCRIPTS, f"no example scripts under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[s.stem for s in SCRIPTS]
)
def test_example_runs_clean(script, monkeypatch):
    # Shrink the env-scaled examples (paper_workloads) to smoke size;
    # scripts with hard-coded scales are already small.
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        runpy.run_path(str(script), run_name="__main__")
    assert out.getvalue().strip(), f"{script.name} printed nothing"
