"""Nominal per-node access clocks derived from the compiled schedule.

The compiler's scheduling table fixes *which iteration slot* touches
which I/O node; combined with the trace's per-slot compute costs that
yields a nominal wall-clock estimate of every node touch — before any
simulation.  Two consumers share this single derivation:

* the static energy analyzer (:mod:`repro.analysis.energy`) turns the
  touch times into per-node residency envelopes and idle-gap
  diagnostics;
* :class:`~repro.power.online.HybridCompilerAssist` hands each drive its
  node's touch times as *hints* — the compiler's prediction of the
  drive's future idle gaps — and overrides them online when observation
  diverges.

The times are nominal (pure compute clock, no I/O delays), which is
exactly why the hybrid policy tracks an observed offset instead of
trusting them as absolute timestamps.

This module is imported directly (``from repro.power.hints import ...``)
rather than re-exported by :mod:`repro.power`: it pulls in the storage
layer, which itself depends on the policy interface, and keeping it out
of the package ``__init__`` keeps that dependency edge one-way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..storage.striping import StripeMap, plan_layout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.table import ScheduleBook
    from ..ir.profiling import AccessTrace

__all__ = [
    "slot_clock",
    "slot_time",
    "signature_nodes",
    "nominal_node_touch_times",
]


def slot_clock(trace: "AccessTrace") -> list[list[float]]:
    """Per-process nominal slot start times (pure compute clock)."""
    clocks: list[list[float]] = []
    for proc in trace.processes:
        starts = [0.0]
        for cost in proc.slot_costs:
            starts.append(starts[-1] + cost)
        clocks.append(starts)
    return clocks


def slot_time(clocks: list[list[float]], process: int, slot: int) -> float:
    starts = clocks[process]
    return starts[min(max(slot, 0), len(starts) - 1)]


def signature_nodes(signature: int) -> list[int]:
    return [bit for bit in range(signature.bit_length()) if signature >> bit & 1]


def _io_extent(striped, block_bytes: int, block: int, blocks: int):
    """Clipped (offset, size) of a traced I/O, or None when degenerate."""
    offset = block * block_bytes
    if offset >= striped.size:
        return None
    size = min(blocks * block_bytes, striped.size - offset)
    if size <= 0:
        return None
    return offset, size


def nominal_node_touch_times(
    trace: "AccessTrace",
    n_ionodes: int,
    stripe_size: int,
    book: Optional["ScheduleBook"] = None,
) -> dict[int, tuple[float, ...]]:
    """Sorted nominal touch times per I/O node, ``{node: (t0, t1, ...)}``.

    With ``book`` (the scheme on), reads land at their *scheduled* slot's
    nominal start and writes stay at their program-order slot; without it
    every traced I/O lands at its program-order slot.  Every node in
    ``range(n_ionodes)`` is present, possibly with an empty tuple.
    """
    program = trace.program
    smap = StripeMap(stripe_size, n_ionodes)
    files = plan_layout(
        {name: decl.size_bytes for name, decl in program.files.items()},
        stripe_size,
        n_ionodes,
    )
    clocks = slot_clock(trace)
    node_times: dict[int, list[float]] = {n: [] for n in range(n_ionodes)}
    if book is not None:
        for access in book.all_accesses():
            t = slot_time(clocks, access.process, access.scheduled_slot or 0)
            for node in signature_nodes(access.signature):
                if node < n_ionodes:
                    node_times[node].append(t)
        io_source = trace.writes()
    else:
        io_source = trace.all_ios()
    for io in io_source:
        striped = files[io.file]
        decl = program.files[io.file]
        extent = _io_extent(striped, decl.block_bytes, io.block, io.blocks)
        if extent is None:
            continue
        t = slot_time(clocks, io.process, io.slot)
        for node in smap.nodes_of_extent(striped, *extent):
            node_times[node].append(t)
    return {node: tuple(sorted(times)) for node, times in node_times.items()}
