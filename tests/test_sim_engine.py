"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Signal, Timeout
from repro.sim.events import Event


class TestScheduling:
    def test_schedule_runs_callback_at_time(self, sim):
        seen = []
        sim.schedule(1.5, seen.append, "a")
        sim.run()
        assert seen == ["a"]
        assert sim.now == 1.5

    def test_simultaneous_events_fire_in_scheduling_order(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "first")
        sim.schedule(1.0, seen.append, "second")
        sim.schedule(1.0, seen.append, "third")
        sim.run()
        assert seen == ["first", "second", "third"]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(3.0, seen.append, 3)
        sim.schedule_at(1.0, seen.append, 1)
        sim.run()
        assert seen == [1, 3]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_cancel_prevents_execution(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_run_until_stops_clock_at_horizon(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_drained(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bound(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(float(i), seen.append, i)
        sim.run(max_events=3)
        assert len(seen) == 3

    def test_step_returns_false_when_drained(self, sim):
        assert sim.step() is False
        sim.schedule(0.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_events_executed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_nested_scheduling_from_callback(self, sim):
        seen = []

        def outer():
            seen.append("outer")
            sim.schedule(1.0, lambda: seen.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == ["outer", "inner"]
        assert sim.now == 2.0

    def test_event_ordering_property(self):
        a = Event(1.0, lambda: None, ())
        b = Event(2.0, lambda: None, ())
        assert a < b

    def test_same_time_ordering_by_sequence(self):
        a = Event(1.0, lambda: None, ())
        b = Event(1.0, lambda: None, ())
        assert a < b
        assert not b < a


class TestPendingCounter:
    """pending_events is an O(1) counter that stays exact under cancels."""

    def test_counts_scheduled_events(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.pending_events == 5

    def test_cancel_decrements_immediately(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        events[0].cancel()
        events[3].cancel()
        assert sim.pending_events == 3

    def test_cancel_idempotence_counts_once(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1

    def test_sim_cancel_method(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        assert event.canceled
        assert sim.pending_events == 0

    def test_counter_exact_after_pops_skip_canceled(self, sim):
        seen = []
        keep = [sim.schedule(float(i + 1), seen.append, i) for i in range(4)]
        for event in keep[1:3]:
            event.cancel()
        sim.run()
        assert seen == [0, 3]
        assert sim.pending_events == 0

    def test_compaction_keeps_live_events(self, sim):
        """Mass-canceling (beyond the compaction threshold) must preserve
        every live event and keep the counter exact."""
        seen = []
        live = [sim.schedule(1000.0 + i, seen.append, i) for i in range(10)]
        doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for event in doomed:
            event.cancel()
        assert sim.pending_events == len(live)
        # Internals: compaction actually shrank the heap.
        assert len(sim._heap) < 100
        sim.run()
        assert sorted(seen) == list(range(10))

    def test_interleaved_cancel_and_execute(self, sim):
        """Cancels issued from inside callbacks keep the counter exact."""
        target = sim.schedule(5.0, lambda: None)
        sim.schedule(1.0, target.cancel)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending_events == 0
        assert sim.now == 2.0


class TestProcesses:
    def test_timeout_advances_clock(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield Timeout(2.5)
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 2.5]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_process_return_value_fires_done(self, sim):
        def proc():
            yield Timeout(1.0)
            return 42

        handle = sim.process(proc())
        sim.run()
        assert handle.done.fired
        assert handle.done.value == 42
        assert not handle.alive

    def test_wait_on_signal(self, sim):
        sig = Signal("go")
        trace = []

        def waiter():
            yield sig
            trace.append(sim.now)

        sim.process(waiter())
        sim.schedule(3.0, sim.fire, sig, "value")
        sim.run()
        assert trace == [3.0]

    def test_multiple_waiters_all_resume(self, sim):
        sig = Signal("go")
        resumed = []

        def waiter(i):
            yield sig
            resumed.append(i)

        for i in range(3):
            sim.process(waiter(i))
        sim.schedule(1.0, sim.fire, sig)
        sim.run()
        assert sorted(resumed) == [0, 1, 2]

    def test_waiting_on_already_fired_signal_resumes_immediately(self, sim):
        sig = Signal("early")
        trace = []

        def proc():
            yield Timeout(2.0)
            yield sig  # fired at t=1, before we got here
            trace.append(sim.now)

        sim.process(proc())
        sim.schedule(1.0, sim.fire, sig)
        sim.run()
        assert trace == [2.0]

    def test_signal_fires_once_unless_restartable(self, sim):
        sig = Signal("once")
        sim.fire(sig)
        with pytest.raises(RuntimeError):
            sig.fire()

    def test_restartable_signal_reset(self, sim):
        sig = Signal("again", restartable=True)
        sim.fire(sig)
        sig.reset()
        assert not sig.fired
        sim.fire(sig)
        assert sig.fired

    def test_reset_non_restartable_raises(self):
        sig = Signal("no")
        with pytest.raises(RuntimeError):
            sig.reset()

    def test_all_of_waits_for_every_signal(self, sim):
        sigs = [Signal(str(i)) for i in range(3)]
        trace = []

        def proc():
            yield AllOf(sigs)
            trace.append(sim.now)

        sim.process(proc())
        for i, sig in enumerate(sigs):
            sim.schedule(float(i + 1), sim.fire, sig)
        sim.run()
        assert trace == [3.0]

    def test_all_of_with_prefired_signals_resumes_now(self, sim):
        sigs = [Signal("a"), Signal("b")]
        for sig in sigs:
            sim.fire(sig)
        trace = []

        def proc():
            yield AllOf(sigs)
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0]

    def test_any_of_resumes_on_first(self, sim):
        sigs = [Signal("slow"), Signal("fast")]
        got = []

        def proc():
            winner = yield AnyOf(sigs)
            got.append(winner)

        sim.process(proc())
        sim.schedule(1.0, sim.fire, sigs[1])
        sim.schedule(5.0, sim.fire, sigs[0])
        sim.run()
        assert got == [sigs[1]]

    def test_any_of_requires_signals(self):
        with pytest.raises(ValueError):
            AnyOf([])

    def test_process_waiting_on_process(self, sim):
        order = []

        def child():
            yield Timeout(2.0)
            order.append("child")
            return "done"

        def parent(handle):
            yield handle
            order.append("parent")

        handle = sim.process(child())
        sim.process(parent(handle))
        sim.run()
        assert order == ["child", "parent"]

    def test_interrupt_kills_process(self, sim):
        trace = []

        def proc():
            trace.append("start")
            yield Timeout(10.0)
            trace.append("never")

        handle = sim.process(proc())
        sim.schedule(1.0, handle.interrupt)
        sim.run()
        assert trace == ["start"]
        assert not handle.alive
        assert handle.done.fired

    def test_unsupported_yield_raises(self, sim):
        def proc():
            yield 123

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_two_processes_interleave_deterministically(self, sim):
        order = []

        def proc(name, delay):
            for _ in range(3):
                yield Timeout(delay)
                order.append((name, sim.now))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.5))
        sim.run()
        # At t=3.0 both are due; b's resume event was scheduled first
        # (at t=1.5 versus a's at t=2.0), so b fires first.
        assert order == [
            ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0),
            ("b", 4.5),
        ]
