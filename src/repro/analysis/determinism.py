"""AST determinism lint (``repro lint --determinism``).

Every result in this repository is contractually reproducible: same
inputs → bit-identical outputs, serial or parallel.  The three classic
ways Python code breaks that contract are wall-clock reads, unseeded
global randomness, and filesystem enumeration order.  This pass walks
the package's own sources with :mod:`ast` and flags:

* ``LINT101`` — wall-clock reads (``time.time``/``monotonic``/
  ``perf_counter``/``strftime``/…, ``datetime.now``/``today``): values
  that differ run to run and must never feed simulated state;
* ``LINT102`` — unseeded randomness: module-level ``random.*`` calls
  (shared global state), ``random.Random()`` or numpy
  ``default_rng()`` constructed without a seed;
* ``LINT103`` — ``os.listdir``/``os.scandir``/``glob``/``iglob``/
  ``Path.glob``/``rglob``/``iterdir`` consumed without a wrapping
  ``sorted(...)``: directory order is filesystem-dependent.

Findings are *errors* — CI gates on them — but a site that is
legitimately non-deterministic (e.g. a benchmark measuring wall time)
can carry a ``# det: <reason>`` comment on the offending line to waive
it; the reason is mandatory, so every waiver is an audited decision.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional

from .diagnostics import (
    Diagnostic,
    Report,
    Severity,
    SourceAnchor,
    register_codes,
)

__all__ = ["lint_determinism", "lint_source", "WAIVER_MARK"]

register_codes(
    "repro.analysis.determinism",
    {
        "LINT101": "wall-clock read in reproducible code",
        "LINT102": "unseeded random source in reproducible code",
        "LINT103": "directory listing consumed without sorting",
    },
)

WAIVER_MARK = "# det:"

#: Canonical dotted names that read the wall clock.
_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.strftime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: ``random`` module members that are fine to call (explicitly seeded
#: constructions and state plumbing).
_RANDOM_OK = frozenset({
    "random.seed",
    "random.getstate",
    "random.setstate",
    "random.SystemRandom",
})

#: Module-level listing functions whose order is filesystem-dependent.
_LISTING_FUNCS = frozenset({
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
})

#: Method names with filesystem-dependent iteration order (pathlib).
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    """One file's walk: resolves import aliases, collects findings."""

    def __init__(self, rel_path: str, source_lines: list[str]):
        self.rel_path = rel_path
        self.lines = source_lines
        self.aliases: dict[str, str] = {}
        self.findings: list[Diagnostic] = []
        self.sorted_args: set[int] = set()

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- helpers -------------------------------------------------------
    def _canonical(self, node: ast.expr) -> Optional[str]:
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def _waived(self, lineno: int) -> bool:
        if 1 <= lineno <= len(self.lines):
            return WAIVER_MARK in self.lines[lineno - 1]
        return False

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self._waived(lineno):
            return
        self.findings.append(Diagnostic(
            code, Severity.ERROR, message,
            SourceAnchor(file=self.rel_path, block=lineno),
        ))

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "sorted":
            for arg in node.args:
                self.sorted_args.add(id(arg))
        name = self._canonical(node.func)

        if name in _WALL_CLOCK:
            self._flag(
                "LINT101", node,
                f"{name}() reads the wall clock; derive times from the "
                f"simulated clock or pass them in",
            )
        elif name is not None and name.startswith("random."):
            if name == "random.Random":
                if not node.args and not node.keywords:
                    self._flag(
                        "LINT102", node,
                        "random.Random() without a seed; pass an explicit "
                        "seed (named stream)",
                    )
            elif name not in _RANDOM_OK:
                self._flag(
                    "LINT102", node,
                    f"{name}() uses the shared global random state; use a "
                    f"seeded random.Random instance",
                )
        elif name is not None and name.endswith("random.default_rng"):
            if not node.args and not node.keywords:
                self._flag(
                    "LINT102", node,
                    "default_rng() without a seed; pass an explicit seed",
                )

        if name in _LISTING_FUNCS or (
            name is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
        ) or (
            name is not None
            and name not in _LISTING_FUNCS
            and name.rsplit(".", 1)[-1] in _LISTING_METHODS
        ):
            if id(node) not in self.sorted_args:
                shown = name or node.func.attr  # type: ignore[union-attr]
                self._flag(
                    "LINT103", node,
                    f"{shown}(...) yields filesystem-dependent order; wrap "
                    f"the call in sorted(...)",
                )
        self.generic_visit(node)


def lint_source(source: str, rel_path: str) -> list[Diagnostic]:
    """Lint one file's source text; returns its findings."""
    tree = ast.parse(source, filename=rel_path)
    # Mark direct arguments of sorted(...) calls before the main walk so
    # `sorted(os.listdir(p))` is recognized regardless of visit order.
    marker = _Visitor(rel_path, source.splitlines())
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            for arg in node.args:
                marker.sorted_args.add(id(arg))
    marker.visit(tree)
    return marker.findings


def lint_determinism(
    root: Optional[Path] = None,
    files: Optional[Iterable[Path]] = None,
) -> Report:
    """Lint the package sources (or an explicit file list) and report.

    ``root`` defaults to the installed ``repro`` package directory, so
    ``repro lint --determinism`` always checks the code that is actually
    running.
    """
    if root is None:
        root = Path(__file__).resolve().parents[1]
    if files is None:
        files = sorted(root.rglob("*.py"))
    report = Report()
    for path in files:
        rel = str(path.relative_to(root)) if path.is_absolute() else str(path)
        source = path.read_text(encoding="utf-8")
        report.extend(lint_source(source, rel))
    return report
