"""Intra-I/O-node RAID layouts (Table II: "RAID Level 5,10").

An I/O node further stripes its local byte stream across its attached
disks.  :class:`RaidMap` translates one node-local extent into the
per-disk requests that layout implies:

* **RAID-0**  — plain striping, no redundancy.
* **RAID-5**  — block-rotating parity; a write touches the data disk and
  the stripe's parity disk (small-write read-modify-write is modelled as
  the two extra pre-reads).
* **RAID-10** — mirrored pairs; reads round-robin between mirrors, writes
  hit both.

The paper's default experiments treat each I/O node as one logical disk
("we use the terms I/O node and disk interchangeably"), which is RAID-0
over a single drive; the richer layouts are exercised by the RAID example
and ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = ["DiskOp", "RaidMap"]

RaidLevel = Literal[0, 5, 10]


@dataclass(frozen=True)
class DiskOp:
    """One physical-disk operation produced by the RAID translation."""

    disk: int
    lba: int
    nbytes: int
    is_write: bool


class RaidMap:
    """Extent → per-disk operation translation for one I/O node."""

    def __init__(self, level: RaidLevel, n_disks: int, chunk_size: int = 64 * 1024):
        if level not in (0, 5, 10):
            raise ValueError(f"unsupported RAID level: {level}")
        if n_disks < 1:
            raise ValueError(f"n_disks must be >= 1: {n_disks}")
        if level == 5 and n_disks < 3:
            raise ValueError("RAID-5 requires at least 3 disks")
        if level == 10 and n_disks % 2 != 0:
            raise ValueError("RAID-10 requires an even number of disks")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        self.level = level
        self.n_disks = n_disks
        self.chunk_size = chunk_size
        self._mirror_rr = 0

    # ------------------------------------------------------------------
    @property
    def data_disks(self) -> int:
        """Disks worth of usable capacity per stripe row."""
        if self.level == 5:
            return self.n_disks - 1
        if self.level == 10:
            return self.n_disks // 2
        return self.n_disks

    def _chunks(self, offset: int, size: int):
        """Yield (chunk_index, within, nbytes) covering the extent."""
        cursor = offset
        remaining = size
        while remaining > 0:
            chunk_index = cursor // self.chunk_size
            within = cursor % self.chunk_size
            nbytes = min(self.chunk_size - within, remaining)
            yield chunk_index, within, nbytes
            cursor += nbytes
            remaining -= nbytes

    def map(self, offset: int, size: int, is_write: bool) -> list[DiskOp]:
        """Translate a node-local extent into physical disk operations."""
        if offset < 0 or size < 0:
            raise ValueError(f"bad extent: offset={offset}, size={size}")
        ops: list[DiskOp] = []
        for chunk_index, within, nbytes in self._chunks(offset, size):
            if self.level == 0:
                ops.extend(self._raid0(chunk_index, within, nbytes, is_write))
            elif self.level == 5:
                ops.extend(self._raid5(chunk_index, within, nbytes, is_write))
            else:
                ops.extend(self._raid10(chunk_index, within, nbytes, is_write))
        return ops

    # ------------------------------------------------------------------
    def _raid0(self, chunk_index: int, within: int, nbytes: int, is_write: bool):
        disk = chunk_index % self.n_disks
        row = chunk_index // self.n_disks
        lba = row * self.chunk_size + within
        return [DiskOp(disk, lba, nbytes, is_write)]

    def _raid5(self, chunk_index: int, within: int, nbytes: int, is_write: bool):
        row = chunk_index // self.data_disks
        position = chunk_index % self.data_disks
        parity_disk = (self.n_disks - 1) - (row % self.n_disks)
        # Data disks are the non-parity disks in row order.
        data_disks = [d for d in range(self.n_disks) if d != parity_disk]
        disk = data_disks[position]
        lba = row * self.chunk_size + within
        ops = [DiskOp(disk, lba, nbytes, is_write)]
        if is_write:
            # Small-write RMW: pre-read old data + old parity, write parity.
            ops.append(DiskOp(disk, lba, nbytes, False))
            ops.append(DiskOp(parity_disk, lba, nbytes, False))
            ops.append(DiskOp(parity_disk, lba, nbytes, True))
        return ops

    def _raid10(self, chunk_index: int, within: int, nbytes: int, is_write: bool):
        pair = chunk_index % self.data_disks
        row = chunk_index // self.data_disks
        primary = pair * 2
        mirror = primary + 1
        lba = row * self.chunk_size + within
        if is_write:
            return [
                DiskOp(primary, lba, nbytes, True),
                DiskOp(mirror, lba, nbytes, True),
            ]
        # Round-robin reads across the mirror pair.
        self._mirror_rr ^= 1
        chosen = primary if self._mirror_rr == 0 else mirror
        return [DiskOp(chosen, lba, nbytes, False)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RaidMap(level={self.level}, disks={self.n_disks})"
