"""Tests for the parallel experiment executor.

The headline guarantees: parallel execution is *bit-identical* to serial,
a warm cache performs zero simulations, and a verify failure in a worker
surfaces as a clear top-level error instead of hanging the pool.
"""

import pytest

from repro.exec import (
    ExperimentExecutor,
    ResultCache,
    RunPoint,
    VerifyFailure,
    all_figure_points,
    execute_point,
    figure_points,
)
from repro.exec.grid import GRID_FIGURES
from repro.experiments import APPS, ExperimentConfig, Runner, fig12c

TINY = ExperimentConfig(workload_scale=0.05)


def tiny_points(apps=("sar", "madbench2"), scheme=False):
    return [RunPoint(app, "simple", scheme, TINY) for app in apps]


class TestGrid:
    def test_every_figure_enumerates(self):
        for name in GRID_FIGURES:
            points = figure_points(name, TINY)
            assert points, name
            assert all(isinstance(p, RunPoint) for p in points)

    def test_table2_needs_no_runs(self):
        assert figure_points("table2", TINY) == []

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            figure_points("fig99", TINY)

    def test_union_deduplicates(self):
        union = all_figure_points(TINY, names=("fig12c", "fig13a"))
        # fig13a consumes exactly fig12c's grid; the union adds nothing.
        assert len(union) == len(figure_points("fig12c", TINY))
        assert len(set(union)) == len(union)

    def test_sweep_points_carry_swept_config(self):
        deltas = {p.config.delta for p in figure_points("fig13d", TINY)}
        assert len(deltas) > 1


class TestEquivalence:
    @pytest.mark.parametrize("apps", [("sar",), ("madbench2",)])
    def test_parallel_bit_identical_to_serial(self, apps):
        """Same workload through jobs=1 and jobs=2 must agree exactly."""
        points = tiny_points(apps=apps)
        serial = ExperimentExecutor(jobs=1).run_points(points)
        # Force the pool even for few points by adding a second app when
        # needed; compare only the points under test.
        pool_points = points + tiny_points(apps=("hf",))
        parallel = ExperimentExecutor(jobs=2).run_points(pool_points)
        for point in points:
            assert parallel[point] == serial[point]

    def test_executor_matches_direct_runner(self):
        point = RunPoint("sar", "history", True, TINY)
        via_executor = ExperimentExecutor(jobs=1).run_points([point])[point]
        direct = Runner(TINY).run("sar", "history", True)
        assert via_executor == direct

    def test_duplicates_resolved_once(self):
        point = RunPoint("sar", "simple", False, TINY)
        executor = ExperimentExecutor(jobs=1)
        results = executor.run_points([point, point, point])
        assert executor.stats.points == 1
        assert executor.stats.simulated == 1
        assert len(results) == 1


class TestCacheIntegration:
    def test_warm_cache_performs_zero_simulations(self, tmp_path):
        points = tiny_points() + tiny_points(scheme=True)
        cold = ExperimentExecutor(jobs=1, cache=ResultCache(tmp_path))
        cold_results = cold.run_points(points)
        assert cold.stats.simulated == len(points)
        assert cold.stats.cache_hits == 0

        warm = ExperimentExecutor(jobs=2, cache=ResultCache(tmp_path))
        warm_results = warm.run_points(points)
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == len(points)
        for point in points:
            assert warm_results[point] == cold_results[point]

    def test_full_figure_replay_is_pure_cache(self, tmp_path):
        """A repeated figure invocation with a warm cache simulates
        nothing and reproduces the figure exactly (acceptance criterion).
        """
        cfg = TINY
        points = figure_points("fig12c", cfg)

        first_exec = ExperimentExecutor(jobs=1, cache=ResultCache(tmp_path))
        first_runner = Runner(cfg, cache=None)
        first_exec.warm_runner(first_runner, points)
        first = fig12c(first_runner)

        replay_exec = ExperimentExecutor(jobs=1, cache=ResultCache(tmp_path))
        replay_runner = Runner(cfg, cache=None)
        replay_exec.warm_runner(replay_runner, points)
        second = fig12c(replay_runner)

        assert replay_exec.stats.simulated == 0
        assert replay_exec.stats.cache_hits == len(points)
        assert replay_runner.simulations == 0
        assert second.data == first.data
        assert second.text == first.text


class TestVerifyGating:
    BAD = ExperimentConfig(workload_scale=0.05, buffer_capacity_blocks=1)

    def test_execute_point_raises_on_error_diagnostics(self):
        # madbench2 at a 1-block buffer yields CAP001 errors.
        point = RunPoint("madbench2", "history", True, self.BAD)
        with pytest.raises(VerifyFailure) as exc:
            execute_point(Runner(self.BAD), point, verify=True)
        assert "madbench2" in str(exc.value)
        assert "CAP001" in str(exc.value)

    def test_verify_failure_surfaces_from_worker_pool(self):
        """A failing point among good ones must raise promptly at the
        top level — not hang the pool or be silently dropped."""
        points = [
            RunPoint("madbench2", "history", True, self.BAD),
            RunPoint("sar", "history", False, self.BAD),
        ]
        executor = ExperimentExecutor(jobs=2, verify=True)
        with pytest.raises(VerifyFailure) as exc:
            executor.run_points(points)
        assert "madbench2" in str(exc.value)

    def test_verify_failure_stores_nothing_in_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ExperimentExecutor(jobs=1, cache=cache, verify=True)
        with pytest.raises(VerifyFailure):
            executor.run_points(
                [RunPoint("madbench2", "history", True, self.BAD)]
            )
        assert len(cache) == 0

    def test_verify_off_skips_the_gate(self):
        point = RunPoint("madbench2", "history", True, self.BAD)
        result = ExperimentExecutor(jobs=1, verify=False).run_points([point])
        assert result[point].energy_joules > 0

    def test_clean_points_pass_the_gate(self):
        point = RunPoint("sar", "history", True, TINY)
        result = ExperimentExecutor(jobs=1, verify=True).run_points([point])
        assert result[point].prefetches > 0


class TestRunnerKeying:
    def test_to_key_enumerates_every_field(self):
        from dataclasses import fields

        key = dict(TINY.to_key())
        assert set(key) == {f.name for f in fields(ExperimentConfig)}

    def test_seed_result_is_found_by_run(self):
        runner = Runner(TINY)
        result = Runner(TINY).run("sar", "simple", False)
        runner.seed_result("sar", "simple", False, TINY, result)
        assert runner.run("sar", "simple", False) is result
        assert runner.simulations == 0

    def test_all_apps_enumerable(self):
        # grid covers the paper's six applications
        apps = {p.workload for p in figure_points("table3", TINY)}
        assert apps == set(APPS)


# ----------------------------------------------------------------------
# Partial-failure behaviour of the one-shot parallel pass
# ----------------------------------------------------------------------
def _stub_partial_worker(point, verify, metrics_dir=None):
    """Module-level stub (forked pools pickle workers by qualname):
    ``boom`` fails after its siblings have had time to finish."""
    import time

    from repro.metrics.idle import idle_cdf
    from repro.experiments.runner import RunResult

    if point.workload == "boom":
        time.sleep(0.5)
        raise RuntimeError("worker exploded")
    return RunResult(
        workload=point.workload,
        policy=point.policy,
        scheme=point.scheme,
        execution_time=1.0,
        energy_joules=10.0,
        idle_cdf=idle_cdf([]),
        idle_periods=[],
        energy_breakdown={},
        buffer_hits=0,
        prefetches=0,
        accesses=0,
    )


class TestPartialFailure:
    def test_failed_pool_run_preserves_completed_siblings(
        self, tmp_path, monkeypatch
    ):
        """One worker failing must not discard the results its siblings
        already produced: they are stored to the cache before the error
        propagates, so a rerun only repeats the failed point."""
        monkeypatch.setattr(
            "repro.exec.executor._worker_run", _stub_partial_worker
        )
        cache = ResultCache(tmp_path)
        executor = ExperimentExecutor(jobs=2, cache=cache, verify=False)
        points = [
            RunPoint("okA", "simple", False, TINY),
            RunPoint("okB", "simple", False, TINY),
            RunPoint("boom", "simple", False, TINY),
        ]
        with pytest.raises(RuntimeError, match="worker exploded"):
            executor.run_points(points)
        assert cache.lookup(TINY, "okA", "simple", False) is not None
        assert cache.lookup(TINY, "okB", "simple", False) is not None
        assert cache.lookup(TINY, "boom", "simple", False) is None
