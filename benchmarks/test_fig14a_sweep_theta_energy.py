"""Figure 14(a) — the scheme's extra energy reduction over the
history-based policy as θ (per-node per-slot access bound) varies.

Paper shape: a larger θ allows denser grouping and therefore more energy
savings.
"""

from repro.experiments import fig14a

from conftest import run_once, sweep_apps


def test_fig14a_sweep_theta_energy(benchmark, runner):
    apps = sweep_apps()
    values = (2, 4, 8)
    result = run_once(
        benchmark, lambda: fig14a(runner, values=values, apps=apps)
    )
    print("\n" + result.text)
    benefits = result.data
    assert all(b > 0 for b in benefits.values())
    # Loosening θ from its tightest setting does not lose energy.
    assert benefits[8] >= benefits[2] - 0.02
