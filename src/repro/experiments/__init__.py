"""Experiment harness: Table II configuration, memoizing runner, and one
driver per table/figure of the paper's evaluation (§V)."""

from .config import ExperimentConfig, bench_scale, default_config
from .figures import (
    APPS,
    FigureResult,
    cache_sensitivity,
    fig12a,
    fig12b,
    fig12c,
    fig12d,
    fig13a,
    fig13b,
    fig13c,
    fig13d,
    fig14a,
    fig14b,
    make_runner,
    table2_rows,
    table3,
)
from .runner import (
    MULTISPEED_POLICIES,
    ONLINE_POLICIES,
    POLICIES,
    Runner,
    RunResult,
)
from .tournament import (
    DEFAULT_ENTRANTS,
    SCENARIOS,
    Entrant,
    run_tournament,
    write_tournament_record,
)

__all__ = [
    "ExperimentConfig",
    "default_config",
    "bench_scale",
    "Runner",
    "RunResult",
    "POLICIES",
    "ONLINE_POLICIES",
    "MULTISPEED_POLICIES",
    "Entrant",
    "DEFAULT_ENTRANTS",
    "SCENARIOS",
    "run_tournament",
    "write_tournament_record",
    "APPS",
    "FigureResult",
    "make_runner",
    "table2_rows",
    "table3",
    "fig12a",
    "fig12b",
    "fig12c",
    "fig12d",
    "fig13a",
    "fig13b",
    "fig13c",
    "fig13d",
    "fig14a",
    "fig14b",
    "cache_sensitivity",
]
