"""Prefetch race / deadlock detection (codes ``RACE001``–``RACE003``).

The runtime's producer-wait makes a scheduler thread block until the
producing process's local clock passes the write slot.  This module builds
the inter-process *wait-for graph* that a schedule induces under the
runtime's ``min_lead``/``batch_slots`` semantics (the pure functions
:func:`~repro.runtime.scheduler_thread.will_prefetch` and
:func:`~repro.runtime.scheduler_thread.issue_window`) and reports:

* **RACE001** — a cycle of producer-waits in which every waited-on process
  is itself blocked before the slot it is awaited at.  Under the paper's
  runtime model (consumers block on their prefetched data) this is a
  guaranteed deadlock.  A theorem worth knowing: a schedule whose windows
  are valid against the *true* producers (SCHED001/006/007-clean) can
  never contain such a cycle — every wait's target slot precedes the
  waiter's blocked slot, so the required slots strictly decrease around
  any cycle, a contradiction.  RACE001 therefore only fires on corrupted
  or hand-built tables, which is exactly when you want it.
* **RACE002** — an unbounded wait: the awaited slot lies beyond the
  producer's slot horizon (its clock never gets there, even at program
  completion), or the scheduler thread's own pacing window starts beyond
  its process's horizon.  The thread hangs forever.
* **RACE003** (note) — batching stall: a window's first slot precedes a
  producer-wait target inside it, so the whole window's issue blocks on
  the wait, delaying the window's other prefetches.  Harmless but worth
  surfacing when tuning ``batch_slots``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.table import ScheduleBook
from ..ir.profiling import AccessTrace
from ..runtime.scheduler_thread import issue_window, will_prefetch
from .diagnostics import Diagnostic, Severity, SourceAnchor

__all__ = ["WaitEdge", "build_wait_graph", "detect_races"]

MAX_REPORTED_CYCLES = 8


@dataclass(frozen=True)
class WaitEdge:
    """One producer-wait a schedule will perform at runtime."""

    waiter: int       # process whose scheduler thread waits
    producer: int     # process whose local clock is awaited
    aid: int          # the prefetched access forcing the wait
    issue_slot: int   # window start: when the wait begins
    blocked_at: int   # the waiter's consuming iteration (blocks there)
    requires: int     # producer local time needed: write slot + 1


def build_wait_graph(
    book: ScheduleBook, min_lead: int, batch_slots: int
) -> list[WaitEdge]:
    """Every cross-process producer-wait the runtime would perform.

    Accesses the runtime never prefetches (lead below ``min_lead``) induce
    no wait: the application reads them synchronously.
    """
    edges: list[WaitEdge] = []
    for table in book.tables.values():
        for _slot, accesses in table:
            for a in accesses:
                if a.producer is None or a.scheduled_slot is None:
                    continue
                if not will_prefetch(a.original_slot, a.scheduled_slot,
                                     min_lead):
                    continue
                slot_w, proc_w = a.producer
                if proc_w == a.process:
                    continue
                edges.append(WaitEdge(
                    waiter=a.process,
                    producer=proc_w,
                    aid=a.aid,
                    issue_slot=issue_window(a.scheduled_slot, batch_slots),
                    blocked_at=a.original_slot,
                    requires=slot_w + 1,
                ))
    return edges


def _pareto_reduce(edges: list[WaitEdge]) -> list[WaitEdge]:
    """Per (waiter, producer) pair keep only the Pareto frontier over
    (max ``requires``, min ``blocked_at``) — any deadlock cycle through a
    dominated edge also exists through a frontier edge, so cycle detection
    stays exact while the graph shrinks to a few edges per process pair."""
    by_pair: dict[tuple[int, int], list[WaitEdge]] = {}
    for e in edges:
        by_pair.setdefault((e.waiter, e.producer), []).append(e)
    reduced: list[WaitEdge] = []
    for pair_edges in by_pair.values():
        pair_edges.sort(key=lambda e: (-e.requires, e.blocked_at))
        best_blocked: int | None = None
        for e in pair_edges:
            if best_blocked is None or e.blocked_at < best_blocked:
                reduced.append(e)
                best_blocked = e.blocked_at
    return reduced


def _find_cycles(edges: list[WaitEdge]) -> list[list[WaitEdge]]:
    """Cycles in the edge graph where edge ``e1`` chains to ``e2`` iff
    ``e2`` leaves the process ``e1`` waits on and that process is blocked
    (at ``e2.blocked_at``) before reaching ``e1.requires``."""
    succ: dict[int, list[int]] = {}
    for i, e1 in enumerate(edges):
        succ[i] = [
            j for j, e2 in enumerate(edges)
            if e2.waiter == e1.producer and e1.requires > e2.blocked_at
        ]

    cycles: list[list[WaitEdge]] = []
    seen_keys: set[frozenset[int]] = set()
    state = dict.fromkeys(range(len(edges)), 0)  # 0 new, 1 active, 2 done
    stack: list[int] = []

    def visit(i: int) -> None:
        if len(cycles) >= MAX_REPORTED_CYCLES:
            return
        state[i] = 1
        stack.append(i)
        for j in succ[i]:
            if state[j] == 1:
                cycle = stack[stack.index(j):]
                key = frozenset(edges[k].aid for k in cycle)
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append([edges[k] for k in cycle])
            elif state[j] == 0:
                visit(j)
        stack.pop()
        state[i] = 2

    for i in range(len(edges)):
        if state[i] == 0:
            visit(i)
    return cycles


def detect_races(
    trace: AccessTrace,
    book: ScheduleBook,
    min_lead: int,
    batch_slots: int,
) -> list[Diagnostic]:
    """All RACE* diagnostics for ``book`` under the given runtime knobs."""
    diagnostics: list[Diagnostic] = []
    horizons = {p.process: p.n_slots for p in trace.processes}
    edges = build_wait_graph(book, min_lead, batch_slots)

    # RACE002 — unbounded producer-waits.  A process's clock tops out at
    # its slot count (advanced once more at completion), so any wait for a
    # later slot never returns.
    bounded: list[WaitEdge] = []
    for e in edges:
        horizon = horizons.get(e.producer)
        if horizon is None:
            diagnostics.append(Diagnostic(
                "RACE002", Severity.ERROR,
                f"access a{e.aid} waits on nonexistent process "
                f"{e.producer}",
                SourceAnchor(process=e.waiter, slot=e.issue_slot, aid=e.aid),
            ))
        elif e.requires > horizon:
            diagnostics.append(Diagnostic(
                "RACE002", Severity.ERROR,
                f"access a{e.aid} waits for process {e.producer} to reach "
                f"slot {e.requires}, beyond its horizon of {horizon} slots",
                SourceAnchor(process=e.waiter, slot=e.issue_slot, aid=e.aid),
            ))
        else:
            bounded.append(e)

    # RACE002 (pacing form) — the thread's own issue window starts beyond
    # its process's horizon, so the pacing wait never returns.
    for table in book.tables.values():
        for slot, accesses in table:
            window = issue_window(slot, batch_slots)
            horizon = horizons.get(table.process, 0)
            if window > horizon and accesses:
                diagnostics.append(Diagnostic(
                    "RACE002", Severity.ERROR,
                    f"issue window {window} starts beyond process "
                    f"{table.process}'s horizon of {horizon} slots",
                    SourceAnchor(process=table.process, slot=slot,
                                 aid=accesses[0].aid),
                ))

    # RACE001 — deadlock cycles among the satisfiable waits.
    for cycle in _find_cycles(_pareto_reduce(bounded)):
        chain = "; ".join(
            f"p{e.waiter} blocked at slot {e.blocked_at} waits for "
            f"p{e.producer} to reach slot {e.requires} (a{e.aid})"
            for e in cycle
        )
        diagnostics.append(Diagnostic(
            "RACE001", Severity.ERROR,
            f"producer-wait cycle: {chain}",
            SourceAnchor(process=cycle[0].waiter, slot=cycle[0].blocked_at,
                         aid=cycle[0].aid),
        ))

    # RACE003 — batching stalls (informational).
    stalls: dict[int, list[WaitEdge]] = {}
    for e in bounded:
        if e.issue_slot < e.requires:
            stalls.setdefault(e.waiter, []).append(e)
    for waiter, waiter_edges in sorted(stalls.items()):
        example = waiter_edges[0]
        diagnostics.append(Diagnostic(
            "RACE003", Severity.INFO,
            f"{len(waiter_edges)} issue window(s) of process {waiter} "
            f"block on a producer-wait at issue time (e.g. a{example.aid} "
            f"issued at slot {example.issue_slot} but needs p"
            f"{example.producer} past slot {example.requires - 1}); larger "
            f"batch_slots widen this",
            SourceAnchor(process=waiter, slot=example.issue_slot,
                         aid=example.aid),
        ))
    return diagnostics
