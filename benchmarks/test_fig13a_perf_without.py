"""Figure 13(a) — performance degradation without the scheme.

Paper shape: the simple strategy degrades performance the most (10.4% on
average; every spin-up lands on the critical path), the predictive
policies stay low, and multi-speed disks barely hurt.
"""

from repro.experiments import APPS, POLICIES, fig13a

from conftest import run_once


def averages(data):
    return {
        policy: sum(data[a][policy] for a in APPS) / len(APPS)
        for policy in POLICIES
    }


def test_fig13a_perf_without(benchmark, runner):
    result = run_once(benchmark, lambda: fig13a(runner))
    print("\n" + result.text)
    avg = averages(result.data)
    print("average degradation:", {p: f"{v:.1%}" for p, v in avg.items()})
    # Simple suffers the worst degradation of the four (paper Fig 13(a)).
    assert avg["simple"] == max(avg.values())
    # Multi-speed policies stay in low single digits.
    assert avg["history"] < 0.05
    assert avg["staggered"] < 0.05
    # Nothing goes pathological.
    assert all(v < 0.30 for v in avg.values())
