"""Observability context shared by every simulation component.

The design goal is *zero cost when disabled*: components cache the
session's tracer at construction and guard every emission site with a
single ``tracer.enabled`` attribute check, so an uninstrumented run pays
one class-attribute lookup per potential trace point and nothing else.
Metrics are even cheaper — with two exceptions (per-link queue-delay
histograms and scheduler stall clocks, both gated the same way) they are
derived *after* the run from state the simulator already keeps
(timelines, stats dataclasses), so the hot path is untouched.

This module is dependency-free so the simulation kernel can import it
without cycles; the heavier pieces live in :mod:`repro.obs.metrics`,
:mod:`repro.obs.tracer`, :mod:`repro.obs.collect` and
:mod:`repro.obs.report`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .metrics import MetricsRegistry

__all__ = ["NullTracer", "NULL_TRACER", "Observability", "NULL_OBS"]


class NullTracer:
    """The do-nothing tracer installed when tracing is off.

    ``enabled`` is a *class* attribute, so the idiomatic guard

    >>> if self._tracer.enabled:
    ...     self._tracer.event("disk.submit", drive=self.name)

    costs exactly one attribute lookup per call site when tracing is
    disabled.  All methods are no-ops so unguarded (cold-path) call sites
    also work.

    ``detail`` gates the high-volume per-operation records (MPI-IO call
    spans, disk requests, network transfers, I/O-node ops); components
    guard those sites with ``tracer.detail`` instead of
    ``tracer.enabled``.
    """

    __slots__ = ()

    enabled = False
    detail = False

    def bind_clock(self, clock: Any) -> None:
        """Accept (and ignore) the simulation clock source."""

    def set_context(self, **fields: Any) -> None:
        """Accept (and ignore) ambient fields for subsequent records."""

    def event(self, name: str, **fields: Any) -> None:
        """Record an instantaneous event (no-op)."""

    def begin(self, name: str, **fields: Any) -> None:
        """Open a span (no-op)."""

    def end(self, name: str, **fields: Any) -> None:
        """Close a span (no-op)."""

    def flush(self) -> None:
        """Flush buffered records (no-op)."""

    def close(self) -> None:
        """Release resources (no-op)."""


NULL_TRACER = NullTracer()


class Observability:
    """Bundle of the two observability channels a run may carry.

    ``tracer`` is never ``None`` (the null tracer stands in when tracing
    is off) so call sites need no ``is None`` checks; ``metrics`` stays
    ``None`` unless the caller wants a post-run snapshot collected.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Any] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        """Whether either channel is live."""
        return bool(self.tracer.enabled) or self.metrics is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Observability(tracing={self.tracer.enabled}, "
            f"metrics={self.metrics is not None})"
        )


NULL_OBS = Observability()
