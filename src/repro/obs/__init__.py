"""``repro.obs`` — zero-cost-when-disabled observability.

Three layers:

* :mod:`repro.obs.base` / :mod:`repro.obs.metrics` /
  :mod:`repro.obs.tracer` — the dependency-light core (null-tracer
  pattern, metrics registry, JSONL span tracer) importable from the
  simulation kernel without cycles;
* :mod:`repro.obs.collect` — walks a finished
  :class:`~repro.runtime.session.SessionResult` and populates a registry
  (drive state residency, energy breakdowns, buffer/cache/network/
  scheduler statistics);
* :mod:`repro.obs.report` — renders a snapshot as text tables or JSON
  (``repro report``).

``collect`` and ``report`` import the simulation stack, so they are
deliberately *not* imported here — use
``from repro.obs.collect import collect_session_metrics`` etc.
"""

from .base import NULL_OBS, NULL_TRACER, NullTracer, Observability
from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    read_snapshot,
    write_snapshot,
)
from .tracer import JsonlTracer, read_trace

__all__ = [
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "read_snapshot",
    "write_snapshot",
    "JsonlTracer",
    "read_trace",
]
