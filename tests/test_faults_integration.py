"""End-to-end guarantees of the fault-injection subsystem.

Three layers of evidence, per the fault-model acceptance criteria:

* **Differential**: over a corpus of random (workload, schedule, plan)
  triples, an empty plan is *bit-identical* to no plan at all, and every
  faulted run still satisfies the integration invariants (reads all
  consumed, energy families sum to the total, buffer never oversubscribed).
* **Replay**: one non-empty plan produces identical results and identical
  merged metrics serially and under a 4-worker pool, and faulted points
  can never collide with clean ones in the result cache.
* **Degraded-mode acceptance**: a RAID-5 array with a dead disk completes
  the workload through parity reconstruction, with the recovery visible
  as ``faults.*`` counters through ``repro report``.
"""

import io
import json
import math
import random

import pytest

from repro.exec import (
    ExperimentExecutor,
    ResultCache,
    RunPoint,
    merge_metrics_dir,
    point_digest,
    run_result_to_dict,
    with_fault_plan,
)
from repro.experiments import ExperimentConfig, Runner
from repro.faults import FaultEvent, FaultPlan, save_plan
from repro.ir import trace_program
from repro.obs.base import Observability
from repro.obs.metrics import MetricsRegistry
from repro.runtime import Session
from repro.workloads import get_workload

from conftest import fast_spec

KB = 1024

#: Small but full-stack: every layer (clients, net, I/O nodes, drives)
#: participates, runs stay sub-second.
SMALL = ExperimentConfig(n_clients=8, n_ionodes=4, workload_scale=0.05)

CORPUS_APPS = ("sar", "madbench2", "hf")
CORPUS_POLICIES = ("simple", "prediction", "history")


def random_plan(rng: random.Random, cfg: ExperimentConfig) -> FaultPlan:
    """One random-but-valid plan drawn from ``rng``."""
    events = []
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(sorted(
            {"disk.transient_errors", "disk.bad_sectors", "disk.fail",
             "node.straggle", "node.crash", "net.loss", "net.latency"}
        ))
        node = rng.randrange(cfg.n_ionodes)
        disk = rng.randrange(cfg.disks_per_node)
        time = rng.uniform(0.0, 20.0)
        if kind == "disk.transient_errors":
            events.append(FaultEvent(
                kind=kind, target=f"node{node}.disk{disk}", time=time,
                duration=rng.uniform(5.0, 50.0),
                probability=rng.uniform(0.05, 0.9),
            ))
        elif kind == "disk.bad_sectors":
            start = rng.randrange(0, 4096) * KB
            events.append(FaultEvent(
                kind=kind, target=f"node{node}.disk{disk}", time=time,
                lba_start=start, lba_end=start + rng.randint(1, 256) * KB,
            ))
        elif kind == "disk.fail":
            events.append(FaultEvent(
                kind=kind, target=f"node{node}.disk{disk}", time=time,
            ))
        elif kind == "node.straggle":
            events.append(FaultEvent(
                kind=kind, target=f"node{node}", time=time,
                duration=rng.uniform(1.0, 20.0),
                factor=rng.uniform(1.5, 8.0),
            ))
        elif kind == "node.crash":
            events.append(FaultEvent(
                kind=kind, target=f"node{node}", time=time,
                duration=rng.uniform(0.5, 5.0),
            ))
        elif kind == "net.loss":
            events.append(FaultEvent(
                kind=kind, target=f"node{node}", time=time,
                duration=rng.uniform(1.0, 20.0),
                probability=rng.uniform(0.05, 0.8),
            ))
        else:
            events.append(FaultEvent(
                kind=kind, target=f"node{node}", time=time,
                duration=rng.uniform(1.0, 20.0),
                extra_latency=rng.uniform(0.001, 0.1),
            ))
    return FaultPlan(events=tuple(events), seed=rng.randrange(1 << 16))


def corpus(n: int):
    """n seeded random (workload, schedule, plan) triples."""
    for seed in range(n):
        rng = random.Random(1000 + seed)
        yield (
            rng.choice(CORPUS_APPS),
            rng.choice(CORPUS_POLICIES),
            rng.random() < 0.5,  # scheme on/off
            random_plan(rng, SMALL),
        )


class TestEmptyPlanDifferential:
    """faults=None and faults=FaultPlan() are the same simulation."""

    def test_empty_plan_bit_identical(self):
        clean = Runner(SMALL).run("sar", "simple", True)
        empty = Runner(SMALL.scaled(fault_plan=FaultPlan())).run(
            "sar", "simple", True
        )
        assert run_result_to_dict(empty) == run_result_to_dict(clean)

    @pytest.mark.parametrize(
        "app,policy,scheme", [
            ("madbench2", "history", True),
            ("hf", "prediction", False),
        ],
    )
    def test_empty_plan_bit_identical_across_grid(self, app, policy, scheme):
        clean = Runner(SMALL).run(app, policy, scheme)
        empty = Runner(SMALL.scaled(fault_plan=FaultPlan())).run(
            app, policy, scheme
        )
        assert run_result_to_dict(empty) == run_result_to_dict(clean)

    def test_empty_plan_schedules_no_extra_events(self):
        """The injector adds zero events to the heap — the structural
        reason the bit-identity above holds."""
        def events(plan):
            trace = trace_program(get_workload("sar").build(4, 0.05))
            session = Session(
                trace, fast_spec(), None, SMALL.session_config(),
                faults=plan,
            )
            outcome = session.run()
            assert session.faults is None  # no injector is even built
            return outcome.sim.events_executed

        assert events(None) == events(FaultPlan())


class TestFaultedCorpusInvariants:
    """Random faulted runs keep the cross-cutting invariants."""

    @pytest.mark.parametrize(
        "app,policy,scheme,plan", list(corpus(6)),
        ids=[f"seed{i}" for i in range(6)],
    )
    def test_faulted_run_invariants(self, app, policy, scheme, plan):
        cfg = SMALL.scaled(fault_plan=plan)
        runner = Runner(cfg)
        result = runner.run(app, policy, scheme)
        # The run terminated and produced sane measurements.
        assert result.execution_time > 0
        assert result.energy_joules > 0
        # Energy families sum to the total, and the breakdown's own
        # total is bit-identical to the fleet energy (same sum order).
        assert result.energy_joules == result.energy_breakdown["total"]
        families = math.fsum(
            v for k, v in result.energy_breakdown.items() if k != "total"
        )
        assert families == pytest.approx(
            result.energy_breakdown["total"], rel=1e-9
        )
        if scheme:
            # Every buffer hit consumed a real prefetch.
            assert result.buffer_hits <= result.prefetches

    @pytest.mark.parametrize(
        "app,policy,scheme,plan", list(corpus(3)),
        ids=[f"seed{i}" for i in range(3)],
    )
    def test_faulted_session_conserves_reads(self, app, policy, scheme, plan):
        """Every read the application issues is consumed exactly once,
        faults or no faults, and the buffer never oversubscribes."""
        trace = trace_program(get_workload(app).build(4, 0.05))
        session = Session(
            trace, fast_spec(), None, SMALL.session_config(), faults=plan,
        )
        outcome = session.run()
        expected_reads = sum(
            1 for p in trace.processes for io in p.ios if not io.is_write
        )
        consumed = sum(
            c.stats.reads_from_buffer
            + c.stats.reads_waited_on_prefetch
            + c.stats.reads_synchronous
            for c in outcome.clients
        )
        assert consumed == expected_reads
        if outcome.buffer is not None:
            assert outcome.buffer.peak_used <= outcome.buffer.capacity_blocks

    def test_faulted_run_is_reproducible(self):
        """The determinism contract: same plan, same bits — twice."""
        _, _, _, plan = next(iter(corpus(1)))
        cfg = SMALL.scaled(fault_plan=plan)
        a = Runner(cfg).run("sar", "history", True)
        b = Runner(cfg).run("sar", "history", True)
        assert run_result_to_dict(a) == run_result_to_dict(b)


REPLAY_PLAN = FaultPlan(
    events=(
        FaultEvent(kind="disk.transient_errors", target="*", time=0.0,
                   duration=500.0, probability=0.2),
        FaultEvent(kind="net.loss", target="node0", time=0.0,
                   duration=500.0, probability=0.3),
        FaultEvent(kind="node.straggle", target="node1", time=0.0,
                   duration=200.0, factor=3.0),
    ),
    seed=42,
)


def test_shipped_sample_plan_is_valid():
    """examples/fault_plan.json (the README walkthrough and the CI
    faults-smoke step both use it) must load and inject something."""
    from pathlib import Path

    from repro.faults import load_plan

    path = Path(__file__).resolve().parent.parent / "examples" / \
        "fault_plan.json"
    plan = load_plan(path)
    assert plan  # non-empty
    assert {e.kind for e in plan.events} >= {
        "disk.transient_errors", "net.loss"
    }


class TestSeededReplay:
    """Serial and 4-worker pools replay a faulted grid bit-for-bit."""

    def points(self):
        # >= 2 cache misses, so --jobs 4 genuinely exercises the pool
        # (a single miss is forced serial by the executor).
        base = [
            RunPoint("sar", "simple", True, SMALL),
            RunPoint("madbench2", "simple", True, SMALL),
        ]
        return with_fault_plan(base, REPLAY_PLAN)

    def test_serial_and_parallel_identical(self, tmp_path):
        points = self.points()
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = ExperimentExecutor(
            jobs=1, metrics_dir=serial_dir
        ).run_points(points)
        parallel = ExperimentExecutor(
            jobs=4, metrics_dir=parallel_dir
        ).run_points(points)
        for point in points:
            assert run_result_to_dict(parallel[point]) == \
                run_result_to_dict(serial[point])
        # The merged observability snapshots agree too: every faults.*
        # counter (and everything else) replays exactly.
        merged_serial = merge_metrics_dir(serial_dir)
        merged_parallel = merge_metrics_dir(parallel_dir)
        assert merged_parallel == merged_serial
        assert any(
            name.startswith("faults.")
            for name in merged_serial.get("counters", {})
        )

    def test_cache_keys_separate_faulted_from_clean(self, tmp_path):
        faulted = SMALL.scaled(fault_plan=REPLAY_PLAN)
        assert point_digest(SMALL, "sar", "simple", True) != \
            point_digest(faulted, "sar", "simple", True)
        # A clean result stored in the cache is invisible to a faulted
        # lookup (and vice versa).
        cache = ResultCache(tmp_path)
        clean_result = Runner(SMALL).run("sar", "simple", True)
        cache.store(SMALL, "sar", "simple", True, clean_result)
        assert cache.lookup(faulted, "sar", "simple", True) is None
        assert cache.lookup(SMALL, "sar", "simple", True) is not None

    def test_different_seeds_are_distinct_cache_points(self):
        a = SMALL.scaled(fault_plan=REPLAY_PLAN)
        b = SMALL.scaled(
            fault_plan=FaultPlan(events=REPLAY_PLAN.events, seed=43)
        )
        assert point_digest(a, "sar", "simple", True) != \
            point_digest(b, "sar", "simple", True)


class TestRaid5DeadDiskAcceptance:
    """A RAID-5 node with a dead member completes via reconstruction."""

    CFG = ExperimentConfig(
        n_clients=8, n_ionodes=2, workload_scale=0.05,
        disks_per_node=3, raid_level=5,
        fault_plan=FaultPlan(events=(
            FaultEvent(kind="disk.fail", target="node0.disk1", time=0.0),
        )),
    )

    def test_run_completes_with_reconstruction_counters(self):
        runner = Runner(self.CFG)
        registry = MetricsRegistry()
        result = runner.run_instrumented(
            "sar", "simple", False, Observability(metrics=registry)
        )
        assert result.execution_time > 0
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["faults.injected.disk.fail"] == 1
        assert counters["faults.raid.degraded_reads"] > 0
        assert counters["faults.raid.reconstructed"] > 0
        assert counters.get("faults.raid.lost_ops", 0) == 0

    def test_dead_disk_serves_no_requests(self):
        trace = trace_program(get_workload("sar").build(4, 0.05))
        session = Session(
            trace, fast_spec(), None, self.CFG.session_config(),
            faults=self.CFG.fault_plan,
        )
        outcome = session.run()
        dead = next(d for d in outcome.drives if d.name == "node0.disk1")
        assert dead.is_dead
        assert dead.stats.requests == 0
        # Its RAID-5 peers absorbed the load.
        peers = [d for d in outcome.drives
                 if d.name.startswith("node0.") and d is not dead]
        assert all(p.stats.requests > 0 for p in peers)

    def test_cli_reports_fault_counters(self, tmp_path):
        """repro run --faults … --metrics … then repro report --filter
        'faults.*' shows the recovery counters (acceptance path)."""
        from repro.cli import main

        plan_path = save_plan(
            FaultPlan(events=(
                FaultEvent(kind="disk.transient_errors", target="*",
                           time=0.0, duration=500.0, probability=0.3),
            ), seed=7),
            tmp_path / "plan.json",
        )
        metrics_path = tmp_path / "metrics.json"
        out = io.StringIO()
        code = main(
            ["run", "--app", "sar", "--policy", "simple",
             "--scale", "0.05", "--no-cache",
             "--faults", str(plan_path), "--metrics", str(metrics_path)],
            out=out,
        )
        assert code == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["faults.disk.read_errors"] > 0

        report_out = io.StringIO()
        code = main(
            ["report", str(metrics_path), "--filter", "faults.*"],
            out=report_out,
        )
        assert code == 0
        text = report_out.getvalue()
        assert "faults.disk.read_errors" in text
        assert "drive." not in text  # filter applied
