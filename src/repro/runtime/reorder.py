"""Straggler-aware client-side request reordering.

Client-side straggler-aware I/O schedulers observe that in a parallel
file system one slow server gates every collective request touching it,
so the *client* should issue the fragments bound for slow servers first
— giving the straggler a head start instead of queueing behind fast
servers' traffic.

:class:`StragglerAwareReorderer` ports that idea onto the scheduler
threads of §III: it keeps a per-I/O-node completion-latency EWMA fed by
observed prefetch completions and reorders each issue window so the
accesses whose slowest touched node is slowest overall go out first.
Reordering *within* a window is free with respect to the compiled
schedule — the thread issues the whole window at its first slot anyway,
so the table's energy-motivated placement is untouched; only the issue
order inside one batch changes.

One reorderer is shared by every scheduler thread of a session (the
straggler map is global, and the simulator is single-threaded, so
sharing is deterministic and free).
"""

from __future__ import annotations

__all__ = ["StragglerAwareReorderer"]


class StragglerAwareReorderer:
    """Per-node latency EWMA + deterministic slowest-first window order."""

    def __init__(self, n_nodes: int, alpha: float = 0.3):
        """``alpha`` weights the newest completion latency; small values
        smooth over per-request noise so a single slow seek does not
        reshuffle every subsequent window."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1: {n_nodes}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.n_nodes = n_nodes
        self.alpha = alpha
        self._ewma = [0.0] * n_nodes
        self._seen = [0] * n_nodes
        self.observations = 0
        self.reordered_windows = 0

    def observe(self, node: int, latency: float) -> None:
        """Record a completed request's latency against ``node``."""
        if not 0 <= node < self.n_nodes:
            return
        if latency < 0:
            return
        if self._seen[node] == 0:
            self._ewma[node] = latency
        else:
            self._ewma[node] = (
                self.alpha * latency + (1 - self.alpha) * self._ewma[node]
            )
        self._seen[node] += 1
        self.observations += 1

    def node_latency(self, node: int) -> float:
        """Current latency estimate for ``node`` (0.0 before evidence)."""
        if not 0 <= node < self.n_nodes:
            return 0.0
        return self._ewma[node]

    def expected_latency(self, signature: int) -> float:
        """Expected completion latency of a request with the given
        I/O-node bitmask: the slowest touched node gates the request."""
        worst = 0.0
        bit = 0
        sig = signature
        while sig:
            if sig & 1 and bit < self.n_nodes:
                worst = max(worst, self._ewma[bit])
            sig >>= 1
            bit += 1
        return worst

    def order(self, accesses: list) -> list:
        """Deterministic slowest-first ordering of one issue window.

        Stable: accesses with equal expected latency (including the
        no-evidence-yet case, where every estimate is 0.0) keep their
        table order, so a reorderer with no observations is an exact
        no-op and fault-free runs stay bit-identical to unreordered ones.
        """
        if len(accesses) < 2:
            return list(accesses)
        decorated = sorted(
            enumerate(accesses),
            key=lambda pair: (-self.expected_latency(pair[1].signature), pair[0]),
        )
        ordered = [access for _idx, access in decorated]
        if any(idx != pos for pos, (idx, _a) in enumerate(decorated)):
            self.reordered_windows += 1
        return ordered
