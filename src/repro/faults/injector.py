"""Runtime side of fault injection: per-component state + counters.

The :class:`FaultInjector` compiles a :class:`~repro.faults.plan.FaultPlan`
into per-component state objects that the simulation components consult
*lazily* — no extra simulator events are ever scheduled, so an injector
built from an empty plan (or none at all) leaves the event heap, and
therefore the whole simulation, bit-identical to a fault-free run.
(:class:`~repro.runtime.session.Session` goes one step further and only
builds an injector when the plan has events.)

Randomness comes from *named seeded streams*: each component owns a
``random.Random`` seeded with ``sha256(f"{plan.seed}:{name}")``, so the
sequence of draws a drive or link sees depends only on its own operation
order — which the deterministic simulator fixes — never on how events
from *different* components interleave.  That is what makes identical
plans replay bit-for-bit, serial or across a process pool.

All mutable run state (remapped extents, remaining spin-up failures,
retry tallies) lives here, per Session, so one plan object can drive many
concurrent runs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional

from .plan import DISK_KINDS, SERVER_KINDS, FaultEvent, FaultPlan

__all__ = [
    "stream_rng",
    "FaultCounters",
    "DriveFaultState",
    "LinkFaultState",
    "FaultInjector",
]

#: Hard cap on retransmissions per transfer under ``net.loss`` — keeps a
#: pathological probability from stalling a link forever.
MAX_RETRANSMITS = 8


def stream_rng(seed: int, name: str) -> random.Random:
    """The named seeded stream for component ``name`` under ``seed``."""
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass
class FaultCounters:
    """Fleet-wide tally of injections and recoveries for one run.

    Shared by every component state of one injector; exported to
    ``repro.obs`` as the ``faults.*`` metric family.
    """

    disk_read_errors: int = 0
    disk_read_retries: int = 0
    disk_reads_recovered: int = 0
    disk_sector_remaps: int = 0
    disk_failed_spinups: int = 0
    disk_spinup_retries: int = 0
    raid_degraded_reads: int = 0
    raid_reconstructed: int = 0
    raid_failed_over: int = 0
    raid_degraded_writes: int = 0
    raid_lost_ops: int = 0
    net_retransmits: int = 0
    net_crash_held: int = 0
    net_straggled: int = 0
    net_latency_spiked: int = 0
    sched_prefetch_timeouts: int = 0
    sched_refetches: int = 0
    buffer_reclaimed: int = 0
    #: Retries each recovered read needed (histogram source).
    retry_counts: list = field(default_factory=list)


class _Window:
    """One active window of a windowed fault kind."""

    __slots__ = ("start", "end", "probability", "factor", "extra_latency")

    def __init__(self, event: FaultEvent):
        self.start = event.time
        self.end = event.end
        self.probability = event.probability
        self.factor = event.factor
        self.extra_latency = event.extra_latency

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


class _BadExtent:
    """A bad-sector extent; mutable because it can be remapped."""

    __slots__ = ("time", "lba_start", "lba_end", "remapped")

    def __init__(self, event: FaultEvent):
        self.time = event.time
        self.lba_start = event.lba_start
        self.lba_end = event.lba_end
        self.remapped = False

    def hits(self, now: float, lba: int, nbytes: int) -> bool:
        return (
            not self.remapped
            and now >= self.time
            and lba < self.lba_end
            and lba + nbytes > self.lba_start
        )


class DriveFaultState:
    """Everything one drive needs to answer its fault questions.

    Consulted by :class:`~repro.disk.drive.Drive` at request completion
    (read errors) and spin-up completion (spin-up failures), and by the
    I/O node's RAID translation (``dead_from``).
    """

    def __init__(
        self,
        name: str,
        events: list,
        plan: FaultPlan,
        counters: FaultCounters,
    ):
        self.name = name
        self.counters = counters
        self.retry_limit = plan.read_retry_limit
        self.retry_penalty = plan.read_retry_penalty
        self.spinup_retry_base = plan.spinup_retry_base
        self._rng = stream_rng(plan.seed, f"drive:{name}")
        self._error_windows: list[_Window] = []
        self._bad_extents: list[_BadExtent] = []
        self._spinup_failures: list[list] = []  # [time, remaining]
        self.dead_from: Optional[float] = None
        for event in events:
            if event.kind == "disk.transient_errors":
                self._error_windows.append(_Window(event))
            elif event.kind == "disk.bad_sectors":
                self._bad_extents.append(_BadExtent(event))
            elif event.kind == "disk.spinup_fail":
                self._spinup_failures.append([event.time, event.count])
            elif event.kind == "disk.fail":
                if self.dead_from is None or event.time < self.dead_from:
                    self.dead_from = event.time

    @property
    def can_die(self) -> bool:
        return self.dead_from is not None

    def is_dead(self, now: float) -> bool:
        return self.dead_from is not None and now >= self.dead_from

    # -- read path -----------------------------------------------------
    def read_attempt_faulty(
        self, now: float, lba: int, nbytes: int, retries_so_far: int
    ) -> bool:
        """Does this read attempt fail?  Counts errors and retries.

        Past ``retry_limit`` attempts the read is served from the spare
        reserve (never faulty), so every read terminates — the simulator
        models degraded *timing*, not data loss on the surviving path.
        """
        if retries_so_far >= self.retry_limit:
            return False
        faulty = any(
            ext.hits(now, lba, nbytes) for ext in self._bad_extents
        )
        if not faulty:
            for window in self._error_windows:
                if window.active(now):
                    if self._rng.random() < window.probability:
                        faulty = True
                    break
        if faulty:
            self.counters.disk_read_errors += 1
            self.counters.disk_read_retries += 1
        return faulty

    def read_recovered(self, now: float, lba: int, nbytes: int,
                       retries: int) -> None:
        """A previously-faulted read completed; remap any bad extents it
        touched so later reads of those LBAs are clean."""
        self.counters.disk_reads_recovered += 1
        self.counters.retry_counts.append(retries)
        for ext in self._bad_extents:
            if ext.hits(now, lba, nbytes):
                ext.remapped = True
                self.counters.disk_sector_remaps += 1

    # -- spin-up path --------------------------------------------------
    def spinup_should_fail(self, now: float) -> bool:
        """Consume one scheduled spin-up failure, if any is armed."""
        for pending in self._spinup_failures:
            if now >= pending[0] and pending[1] > 0:
                pending[1] -= 1
                self.counters.disk_failed_spinups += 1
                return True
        return False

    def spinup_retry_delay(self, attempt: int) -> float:
        """Exponential backoff before spin-up attempt ``attempt + 1``."""
        self.counters.disk_spinup_retries += 1
        return self.spinup_retry_base * (2.0 ** attempt)


class LinkFaultState:
    """Fault view of one I/O node's network link.

    Consulted by :class:`~repro.net.network.Link` when a transfer is
    scheduled; perturbs (start, service, latency) and never drops a
    transfer — a crash *holds* traffic until recovery, so in-flight I/O
    always lands and conservation invariants survive degradation.
    """

    def __init__(
        self,
        node_id: int,
        events: list,
        plan: FaultPlan,
        counters: FaultCounters,
    ):
        self.node_id = node_id
        self.counters = counters
        self.retransmit_delay = plan.retransmit_delay
        self._rng = stream_rng(plan.seed, f"link:{node_id}")
        self._crash: list[_Window] = []
        self._straggle: list[_Window] = []
        self._loss: list[_Window] = []
        self._latency: list[_Window] = []
        buckets = {
            "node.crash": self._crash,
            "node.straggle": self._straggle,
            "net.loss": self._loss,
            "net.latency": self._latency,
        }
        for event in events:
            buckets[event.kind].append(_Window(event))

    def perturb(
        self, start: float, service: float, latency: float
    ) -> tuple[float, float, float]:
        """Apply every active fault window to one transfer."""
        for window in self._crash:
            if window.active(start):
                start = window.end
                self.counters.net_crash_held += 1
        for window in self._straggle:
            if window.active(start):
                service *= window.factor
                self.counters.net_straggled += 1
        for window in self._loss:
            if window.active(start):
                retransmits = 0
                while (
                    retransmits < MAX_RETRANSMITS
                    and self._rng.random() < window.probability
                ):
                    retransmits += 1
                if retransmits:
                    service += retransmits * self.retransmit_delay
                    self.counters.net_retransmits += retransmits
        for window in self._latency:
            if window.active(start):
                latency += window.extra_latency
                self.counters.net_latency_spiked += 1
        return start, service, latency


def _node_key(target: str) -> str:
    """Normalize a node target (``node3`` or ``3``) to its index string."""
    return target[4:] if target.startswith("node") else target


class FaultInjector:
    """Compiled, per-run fault state for every targeted component.

    ``drive_state(name)`` / ``link_state(node_id)`` return ``None`` for
    components no event targets, so untargeted components keep their
    fault-free fast path (a single ``is None`` check).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counters = FaultCounters()
        self.injected: dict[str, int] = {}
        self._disk_events: dict[str, list] = {}
        self._disk_wildcard: list = []
        self._node_events: dict[str, list] = {}
        self._node_wildcard: list = []
        for event in plan.events:
            if event.kind in SERVER_KINDS:
                # Serving-path faults (repro.serve.chaos) — not ours.
                # Skipping them here keeps a server-only plan a strict
                # no-op for the simulation.
                continue
            self.injected[event.kind] = self.injected.get(event.kind, 0) + 1
            if event.kind in DISK_KINDS:
                if event.target == "*":
                    self._disk_wildcard.append(event)
                else:
                    self._disk_events.setdefault(event.target, []).append(
                        event
                    )
            else:
                if event.target == "*":
                    self._node_wildcard.append(event)
                else:
                    self._node_events.setdefault(
                        _node_key(event.target), []
                    ).append(event)
        self._drive_states: dict[str, Optional[DriveFaultState]] = {}
        self._link_states: dict[int, Optional[LinkFaultState]] = {}

    # -- runtime recovery knobs ---------------------------------------
    @property
    def fetch_timeout(self) -> Optional[float]:
        return self.plan.fetch_timeout

    @property
    def fetch_retries(self) -> int:
        return self.plan.fetch_retries

    # -- component state ----------------------------------------------
    def drive_state(self, name: str) -> Optional[DriveFaultState]:
        """Fault state for drive ``name`` (e.g. ``node0.disk1``)."""
        if name not in self._drive_states:
            events = self._disk_wildcard + self._disk_events.get(name, [])
            self._drive_states[name] = (
                DriveFaultState(name, events, self.plan, self.counters)
                if events
                else None
            )
        return self._drive_states[name]

    def link_state(self, node_id: int) -> Optional[LinkFaultState]:
        """Fault state for I/O node ``node_id``'s link."""
        if node_id not in self._link_states:
            events = self._node_wildcard + self._node_events.get(
                str(node_id), []
            )
            self._link_states[node_id] = (
                LinkFaultState(node_id, events, self.plan, self.counters)
                if events
                else None
            )
        return self._link_states[node_id]
