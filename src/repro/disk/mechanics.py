"""Mechanical service-time model for one disk request.

Given a :class:`~repro.disk.specs.DiskSpec`, the head position and the
request's logical block address, :func:`service_components` computes the
seek / rotational-latency / transfer breakdown DiskSim would produce, at the
current rotational speed.  The model is deliberately at the "detailed
analytical" level rather than sector-accurate: the paper's results depend on
request *durations* and the busy/idle structure, not on sector phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import DiskSpec

__all__ = ["ServiceComponents", "service_components", "lba_to_cylinder"]


@dataclass(frozen=True)
class ServiceComponents:
    """Breakdown of one request's service time (seconds)."""

    seek: float
    rotational_latency: float
    transfer: float

    @property
    def total(self) -> float:
        return self.seek + self.rotational_latency + self.transfer


def lba_to_cylinder(spec: DiskSpec, lba: int) -> int:
    """Map a logical block address (in bytes) to a cylinder index.

    Uses a uniform bytes-per-cylinder layout — adequate for seek-distance
    estimation (zoned recording would only skew the distance distribution
    slightly).
    """
    bytes_per_cylinder = max(1, spec.capacity_bytes // spec.cylinders)
    cyl = (lba // bytes_per_cylinder) % spec.cylinders
    return int(cyl)


def service_components(
    spec: DiskSpec,
    head_cylinder: int,
    lba: int,
    nbytes: int,
    rpm: int,
    sequential_hint: bool = False,
) -> ServiceComponents:
    """Compute the mechanical service-time components of one request.

    ``sequential_hint`` marks a request that directly follows its
    predecessor on disk (same stream): seek and rotational latency collapse
    to (almost) zero, which is what makes grouped sequential access cheap.
    """
    if nbytes < 0:
        raise ValueError(f"negative request size: {nbytes}")
    if rpm <= 0:
        raise ValueError(f"non-positive rpm: {rpm}")

    if sequential_hint:
        seek = 0.0
        rot = spec.head_switch_time  # occasional head/track switch
    else:
        target = lba_to_cylinder(spec, lba)
        distance = abs(target - head_cylinder) / max(1, spec.cylinders - 1)
        seek = spec.seek_time(distance)
        rot = spec.avg_rotational_latency(rpm)

    transfer = spec.transfer_time(nbytes, rpm)
    return ServiceComponents(seek=seek, rotational_latency=rot, transfer=transfer)
