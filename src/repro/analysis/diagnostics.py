"""Diagnostics engine for the static schedule verifier.

Every checker in :mod:`repro.analysis` reports through this module: a
:class:`Diagnostic` carries a *stable code* (``SCHED001``, ``RACE001``,
``CAP001``, ``LINT001``, …), a :class:`Severity`, a human message and a
:class:`SourceAnchor` tying the finding back to the schedule artifact
(process, slot, access id, file/block).  A :class:`Report` aggregates
diagnostics and renders them as text (CLI) or JSON (tooling).

Codes are append-only: once published a code keeps its meaning forever,
so tests and downstream tooling may match on them exactly.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Severity", "SourceAnchor", "Diagnostic", "Report", "CODES"]


class Severity(enum.IntEnum):
    """Diagnostic severity; higher is worse (sortable)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


#: Registry of every stable diagnostic code with its one-line summary.
#: Append-only — codes never change meaning or get reused.
CODES: dict[str, str] = {
    # Schedule verifier (schedule_check.py)
    "SCHED001": "scheduled slot lies outside the access's slack window",
    "SCHED002": "scheduled slot overruns the slot horizon",
    "SCHED003": "access appears more than once in the schedule book",
    "SCHED004": "traced read has no scheduled access (unscheduled)",
    "SCHED005": "access filed under the wrong process table",
    "SCHED006": "recorded producer disagrees with the dependence oracle",
    "SCHED007": "prefetch ordered at/before its producing write (hazard)",
    "SCHED008": "scheduled access matches no traced read (phantom)",
    # Prefetch race / deadlock detector (races.py)
    "RACE001": "producer-wait cycle: guaranteed cross-process deadlock",
    "RACE002": "unbounded wait: producer never reaches the awaited slot",
    "RACE003": "batching stalls the issue window on a producer-wait",
    # Buffer capacity analyzer (capacity.py)
    "CAP001": "single access larger than the whole prefetch buffer",
    "CAP002": "peak live prefetched blocks exceed buffer capacity",
    # IR lint (capacity.py)
    "LINT001": "dead write: block is never read after being written",
    "LINT002": "declared file is never accessed by the program",
}


@dataclass(frozen=True)
class SourceAnchor:
    """Where in the schedule/IR a diagnostic points.

    All fields are optional; checkers fill in whatever identifies the
    finding most precisely (an access id for schedule violations, a
    process pair for races, a file for IR lint).
    """

    process: Optional[int] = None
    slot: Optional[int] = None
    aid: Optional[int] = None
    file: Optional[str] = None
    block: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            k: v
            for k, v in (
                ("process", self.process),
                ("slot", self.slot),
                ("aid", self.aid),
                ("file", self.file),
                ("block", self.block),
            )
            if v is not None
        }

    def __str__(self) -> str:
        parts = []
        if self.process is not None:
            parts.append(f"p{self.process}")
        if self.slot is not None:
            parts.append(f"slot {self.slot}")
        if self.aid is not None:
            parts.append(f"a{self.aid}")
        if self.file is not None:
            loc = self.file
            if self.block is not None:
                loc += f"[{self.block}]"
            parts.append(loc)
        return ":".join(parts) if parts else "<schedule>"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static checker."""

    code: str
    severity: Severity
    message: str
    anchor: SourceAnchor = field(default_factory=SourceAnchor)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "summary": CODES[self.code],
            "message": self.message,
            "anchor": self.anchor.as_dict(),
        }

    def render(self) -> str:
        return f"{self.severity.label}[{self.code}] {self.anchor}: {self.message}"


class Report:
    """An ordered collection of diagnostics with renderers."""

    def __init__(self, diagnostics: Optional[list[Diagnostic]] = None):
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ------------------------------------------------------------------
    def with_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.with_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_code(self, code: str) -> list[Diagnostic]:
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def counts(self) -> dict[str, int]:
        """code → occurrence count, sorted by code."""
        out: dict[str, int] = {}
        for d in sorted(self.diagnostics, key=lambda d: d.code):
            out[d.code] = out.get(d.code, 0) + 1
        return out

    # ------------------------------------------------------------------
    def sorted(self) -> list[Diagnostic]:
        """Worst first, then by code and anchor for stable output."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.code, str(d.anchor)),
        )

    def render_text(self, title: str = "schedule verification") -> str:
        lines = [f"== {title} =="]
        for diag in self.sorted():
            lines.append(diag.render())
        lines.append(
            f"-- {len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.with_severity(Severity.INFO))} note(s)"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "diagnostics": [d.as_dict() for d in self.sorted()],
            "counts": self.counts(),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "clean": not self.has_errors,
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Report({len(self.diagnostics)} diagnostics, "
            f"{len(self.errors)} errors)"
        )
