"""Tests for the interconnect model."""

import pytest

from repro.net import Link, Network


class TestLink:
    def test_transfer_time_formula(self, sim):
        link = Link(sim, latency=0.001, bandwidth_bps=1e9)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_transfer_completes_after_latency_and_service(self, sim):
        link = Link(sim, latency=0.5, bandwidth_bps=1000.0)
        done = []
        link.transfer(1000, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.5)]

    def test_fifo_serialization(self, sim):
        link = Link(sim, latency=0.0, bandwidth_bps=1000.0)
        done = []
        link.transfer(1000, lambda: done.append(("a", sim.now)))
        link.transfer(1000, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_queue_delay_tracked(self, sim):
        link = Link(sim, latency=0.0, bandwidth_bps=1000.0)
        link.transfer(1000, lambda: None)
        link.transfer(1000, lambda: None)
        sim.run()
        assert link.stats.total_queue_delay == pytest.approx(1.0)

    def test_idle_link_has_no_queue_delay(self, sim):
        link = Link(sim, latency=0.0, bandwidth_bps=1000.0)
        link.transfer(500, lambda: None)
        sim.run()
        link.transfer(500, lambda: None)
        sim.run()
        assert link.stats.total_queue_delay == 0.0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Link(sim, latency=-1, bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            Link(sim, latency=0, bandwidth_bps=0)
        link = Link(sim, latency=0, bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            link.transfer(-1, lambda: None)


class TestNetwork:
    def test_per_node_links_independent(self, sim):
        net = Network(sim, 2, latency=0.0, bandwidth_bps=1000.0)
        done = []
        net.to_node(0, 1000, lambda: done.append(("n0", sim.now)))
        net.to_node(1, 1000, lambda: done.append(("n1", sim.now)))
        sim.run()
        # Both finish at t=1: no cross-node serialization.
        assert done[0][1] == pytest.approx(1.0)
        assert done[1][1] == pytest.approx(1.0)

    def test_stats_aggregate(self, sim):
        net = Network(sim, 2, latency=0.0, bandwidth_bps=1e6)
        net.to_node(0, 100, lambda: None)
        net.from_node(1, 200, lambda: None)
        sim.run()
        assert net.stats.transfers == 2
        assert net.stats.bytes_moved == 300
