"""Storage substrate: striping, RAID, storage caches, I/O nodes, PFS.

This is the PVFS-plus-storage-cache half of the paper's simulation
environment.  The :class:`ParallelFileSystem` facade assembles everything;
:class:`StripeMap` is also consumed by the compiler to derive signatures.
"""

from .cache import CacheStats, StorageCache
from .filesystem import ParallelFileSystem
from .ionode import IONode, IONodeStats
from .raid import DiskOp, RaidMap
from .striping import Extent, StripedFile, StripeMap

__all__ = [
    "ParallelFileSystem",
    "IONode",
    "IONodeStats",
    "StorageCache",
    "CacheStats",
    "RaidMap",
    "DiskOp",
    "StripeMap",
    "StripedFile",
    "Extent",
]
