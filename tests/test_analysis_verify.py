"""Schedule verifier: golden bad-schedule fixtures, clean-compile
properties on the paper workloads, the compiler gate and the CLI."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RuntimeModel,
    ScheduleVerificationError,
    check_book,
    oracle_writer_table,
    verify_schedule,
)
from repro.cli import main
from repro.core.access import DataAccess
from repro.core.compiler import CompileResult, CompilerOptions, compile_schedule
from repro.experiments import Runner, default_config
from repro.ir.affine import var
from repro.ir.profiling import trace_program
from repro.ir.program import Compute, FileDecl, Loop, Program, Read, Write
from repro.storage.striping import StripedFile, StripeMap

BLOCK = 64 * 1024
PAPER_WORKLOADS = ["hf", "sar", "astro", "apsi", "madbench2", "wupwise"]


def cross_program() -> Program:
    """Two SPMD processes; each reads what the *other* wrote.

    Process ``p`` writes blocks ``[4p, 4p+4)`` in slots 0–3, then reads
    blocks ``[4(1−p), 4(1−p)+4)`` in slots 4–7, so every read has a
    cross-process producer at slot ``j`` and slack window ``[j+1, 4+j]``.
    Fully affine: the polyhedral oracle applies.
    """
    p, i, j = var("p"), var("i"), var("j")
    files = {"f": FileDecl("f", 8, BLOCK)}
    body = [
        Loop("i", 0, 3, body=[Write("f", p * 4 + i), Compute(1.0)]),
        Loop("j", 0, 3, body=[Read("f", (1 - p) * 4 + j), Compute(1.0)]),
    ]
    return Program("cross", 2, files, body)


def compile_fixture(**options) -> CompileResult:
    program = cross_program()
    trace = trace_program(program)
    stripe_map = StripeMap(BLOCK, 2)
    files = {n: StripedFile(n, d.size_bytes) for n, d in program.files.items()}
    return compile_schedule(
        program, stripe_map, files, CompilerOptions(**options), trace=trace
    )


def first_access(result: CompileResult, process: int = 0) -> DataAccess:
    return min(
        (a for a in result.book.all_accesses() if a.process == process),
        key=lambda a: a.aid,
    )


class TestCleanSchedules:
    def test_fixture_verifies_clean(self):
        result = compile_fixture()
        report = verify_schedule(result.trace, result.book)
        assert not report.has_errors, report.render_text()

    def test_oracle_matches_profiling_path(self):
        trace = trace_program(cross_program())
        assert oracle_writer_table(trace, granularity=1) == (
            trace.last_writer_table()
        )


class TestBadScheduleFixtures:
    """Each seeded corruption must be rejected with its stable code."""

    def test_slack_violation(self):
        result = compile_fixture()
        access = first_access(result)
        access.scheduled_slot = access.end + 2  # outside window, in horizon
        report = verify_schedule(result.trace, result.book)
        assert "SCHED001" in report.codes()
        assert report.has_errors

    def test_horizon_overrun(self):
        result = compile_fixture()
        access = first_access(result)
        access.scheduled_slot = result.trace.n_slots + 5
        report = verify_schedule(result.trace, result.book)
        assert "SCHED002" in report.codes()

    def test_duplicate_access(self):
        result = compile_fixture()
        access = first_access(result)
        result.book.table_for(0).add(access)
        report = verify_schedule(result.trace, result.book)
        assert "SCHED003" in report.codes()

    def test_unscheduled_access(self):
        result = compile_fixture()
        table = result.book.table_for(0)
        slot = min(table.by_slot)
        table.by_slot[slot].pop(0)
        report = verify_schedule(result.trace, result.book)
        assert "SCHED004" in report.codes()

    def test_wrong_process_table(self):
        result = compile_fixture()
        table = result.book.table_for(0)
        slot = min(table.by_slot)
        access = table.by_slot[slot].pop(0)
        result.book.table_for(1).by_slot.setdefault(slot, []).append(access)
        report = verify_schedule(result.trace, result.book)
        assert "SCHED005" in report.codes()

    def test_stale_producer(self):
        result = compile_fixture()
        access = first_access(result)
        assert access.producer is not None
        access.producer = None  # forget the cross-process dependence
        report = verify_schedule(result.trace, result.book)
        assert "SCHED006" in report.codes()

    def test_producer_after_consumer_hazard(self):
        result = compile_fixture()
        # The read of block (1-p)*4+2 consumes at slot 6, produced at
        # slot 2 by the other process.  Forge the window so the prefetch
        # lands *at* the producing write without tripping SCHED001/006.
        access = next(
            a for a in result.book.all_accesses()
            if a.process == 0 and a.original_slot == 6
        )
        assert access.producer == (2, 1)
        access.begin = 0
        access.scheduled_slot = 2
        report = verify_schedule(result.trace, result.book)
        assert "SCHED007" in report.codes()
        assert "SCHED001" not in report.codes()
        assert "SCHED006" not in report.codes()

    def test_phantom_access(self):
        result = compile_fixture()
        ghost = DataAccess(
            aid=9_999, process=0, original_slot=3, begin=0, end=3,
            signature=1, file="f", block=0, scheduled_slot=1,
        )
        result.book.table_for(0).by_slot.setdefault(1, []).append(ghost)
        report = verify_schedule(result.trace, result.book)
        assert "SCHED008" in report.codes()

    def test_check_book_directly_returns_typed_diagnostics(self):
        result = compile_fixture()
        access = first_access(result)
        access.scheduled_slot = access.end + 2
        diags = check_book(result.trace, result.book)
        (diag,) = [d for d in diags if d.code == "SCHED001"]
        assert diag.anchor.aid == access.aid
        assert diag.anchor.process == access.process


class TestPaperWorkloadsVerifyClean:
    """Acceptance: every stock-compiled paper workload verifies clean."""

    @pytest.mark.parametrize("name", PAPER_WORKLOADS)
    def test_stock_schedule_is_clean(self, name):
        cfg = default_config(scale=0.05).scaled(n_clients=8)
        runner = Runner(cfg)
        compiled = runner.compilation(name)
        report = verify_schedule(
            compiled.trace,
            compiled.book,
            runtime=RuntimeModel.from_session_config(cfg.session_config()),
            granularity=cfg.granularity,
        )
        assert not report.has_errors, report.render_text(title=name)


class TestCompilerProperty:
    """Property: any knob combination yields a verifiably clean book."""

    @settings(max_examples=25, deadline=None)
    @given(
        delta=st.integers(1, 40),
        theta=st.one_of(st.none(), st.integers(1, 8)),
        extended=st.booleans(),
        seed=st.integers(0, 7),
        tie_break=st.sampled_from(["random", "first", "latest"]),
        order=st.sampled_from(["shortest", "longest", "program"]),
    )
    def test_any_knobs_verify_clean(
        self, delta, theta, extended, seed, tie_break, order
    ):
        result = compile_fixture(
            delta=delta, theta=theta, extended=extended, seed=seed,
            tie_break=tie_break, order=order,
        )
        report = verify_schedule(result.trace, result.book)
        assert not report.has_errors, report.render_text()


class TestCompilerGate:
    def test_gate_passes_clean_compile(self):
        result = compile_fixture(verify=True)
        assert result.book.access_count() == 8

    def test_gate_rejects_corrupting_scheduler(self, monkeypatch):
        from repro.core import compiler as compiler_mod

        real_factory = compiler_mod.make_scheduler

        class CorruptingScheduler:
            def __init__(self, inner):
                self.inner = inner

            def schedule(self, accesses):
                state = self.inner.schedule(accesses)
                accesses[0].scheduled_slot = accesses[0].end + 1_000
                return state

        monkeypatch.setattr(
            compiler_mod, "make_scheduler",
            lambda **kw: CorruptingScheduler(real_factory(**kw)),
        )
        with pytest.raises(ScheduleVerificationError) as excinfo:
            compile_fixture(verify=True)
        assert excinfo.value.report.has_errors
        assert "SCHED001" in excinfo.value.report.codes()

    def test_gate_off_by_default(self, monkeypatch):
        from repro.core import compiler as compiler_mod

        real_factory = compiler_mod.make_scheduler

        class CorruptingScheduler:
            def __init__(self, inner):
                self.inner = inner

            def schedule(self, accesses):
                state = self.inner.schedule(accesses)
                accesses[0].scheduled_slot = accesses[0].end + 1_000
                return state

        monkeypatch.setattr(
            compiler_mod, "make_scheduler",
            lambda **kw: CorruptingScheduler(real_factory(**kw)),
        )
        compile_fixture()  # no gate, no raise


class TestVerifyCLI:
    def test_verify_single_app_clean(self):
        out = io.StringIO()
        rc = main(["verify", "--app", "hf", "--scale", "0.05"], out=out)
        assert rc == 0
        assert "verify hf" in out.getvalue()
        assert "0 error(s)" in out.getvalue()

    def test_verify_json(self):
        out = io.StringIO()
        rc = main(["verify", "--app", "madbench2", "--scale", "0.05",
                   "--json"], out=out)
        assert rc == 0
        payload = json.loads(out.getvalue())
        assert payload["clean"] is True

    def test_lint_cli(self):
        out = io.StringIO()
        rc = main(["lint", "--app", "hf", "--scale", "0.05"], out=out)
        assert rc == 0
        assert "LINT001" in out.getvalue()
