"""Property tests for the hand-rolled HTTP/1.1 framing.

The parsers in :mod:`repro.serve.http` sit under every request the
service ever sees, so they get the adversarial treatment: Hypothesis
feeds each wire image through a :class:`asyncio.StreamReader` cut at
arbitrary byte boundaries — down to one byte per feed — and the parse
must come out identical.  The truncation property is the sharp edge:
*every* proper prefix of a chunked stream must raise
:class:`TruncatedResponse`, never return short data as a clean body.
"""

import asyncio
import json

from hypothesis import given, settings, strategies as st

from repro.serve.http import (
    TruncatedResponse,
    encode_chunk,
    read_chunked_body,
    read_request,
)

SETTINGS = settings(max_examples=60, deadline=None)

_token = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
)


def _feed_in_pieces(reader: asyncio.StreamReader, payload: bytes, cuts):
    """Feed ``payload`` split at ``cuts``, yielding to the loop between
    pieces so the parser genuinely observes partial reads."""

    async def feeder():
        pos = 0
        for cut in sorted(set(cuts)):
            cut = min(cut, len(payload))
            if cut > pos:
                reader.feed_data(payload[pos:cut])
                pos = cut
            await asyncio.sleep(0)
        if pos < len(payload):
            reader.feed_data(payload[pos:])
        reader.feed_eof()

    return asyncio.get_running_loop().create_task(feeder())


async def _parse_request(payload: bytes, cuts):
    reader = asyncio.StreamReader()
    feeder = _feed_in_pieces(reader, payload, cuts)
    request = await read_request(reader)
    await feeder
    return request


async def _parse_chunked(payload: bytes, cuts):
    reader = asyncio.StreamReader()
    feeder = _feed_in_pieces(reader, payload, cuts)
    try:
        return await read_chunked_body(reader)
    finally:
        await feeder


def _request_bytes(doc: dict, path: str, query: dict) -> bytes:
    body = json.dumps(doc).encode()
    target = path
    if query:
        target += "?" + "&".join(f"{k}={v}" for k, v in query.items())
    head = (
        f"POST {target} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    return head.encode() + body


class TestRequestFraming:
    @SETTINGS
    @given(
        doc=st.dictionaries(
            _token,
            st.integers(-1000, 1000) | st.booleans() | _token,
            max_size=4,
        ),
        segments=st.lists(_token, max_size=3),
        query=st.dictionaries(_token, _token, max_size=3),
        data=st.data(),
    )
    def test_round_trip_under_arbitrary_splits(
        self, doc, segments, query, data
    ):
        path = "/" + "/".join(segments)
        payload = _request_bytes(doc, path, query)
        cuts = data.draw(
            st.lists(st.integers(0, len(payload)), max_size=12),
            label="cuts",
        )
        request = asyncio.run(_parse_request(payload, cuts))
        assert request is not None
        assert request.method == "POST"
        assert request.path == path
        assert request.query == query
        assert request.json() == doc

    def test_one_byte_at_a_time(self):
        doc = {"workload": "sar", "scheme": True}
        payload = _request_bytes(doc, "/v1/submit", {"tenant": "a"})
        cuts = range(len(payload))  # every boundary: 1-byte feeds
        request = asyncio.run(_parse_request(payload, cuts))
        assert request.path == "/v1/submit"
        assert request.query == {"tenant": "a"}
        assert request.json() == doc

    @SETTINGS
    @given(data=st.data())
    def test_pipelined_keep_alive_parses_both(self, data):
        first = _request_bytes({"n": 1}, "/v1/submit", {})
        second = _request_bytes({"n": 2}, "/v1/grid", {"tenant": "b"})
        payload = first + second
        cuts = data.draw(
            st.lists(st.integers(0, len(payload)), max_size=12),
            label="cuts",
        )

        async def scenario():
            reader = asyncio.StreamReader()
            feeder = _feed_in_pieces(reader, payload, cuts)
            one = await read_request(reader)
            two = await read_request(reader)
            eof = await read_request(reader)
            await feeder
            return one, two, eof

        one, two, eof = asyncio.run(scenario())
        assert one.json() == {"n": 1}
        assert one.path == "/v1/submit"
        assert two.json() == {"n": 2}
        assert two.query == {"tenant": "b"}
        assert eof is None  # clean EOF after the pipeline drains


class TestChunkedFraming:
    @SETTINGS
    @given(
        chunks=st.lists(
            st.binary(min_size=1, max_size=64), max_size=8
        ),
        data=st.data(),
    )
    def test_round_trip_under_arbitrary_splits(self, chunks, data):
        payload = b"".join(encode_chunk(c) for c in chunks) + encode_chunk(
            b""
        )
        cuts = data.draw(
            st.lists(st.integers(0, len(payload)), max_size=12),
            label="cuts",
        )
        body = asyncio.run(_parse_chunked(payload, cuts))
        assert body == b"".join(chunks)

    @SETTINGS
    @given(
        chunks=st.lists(
            st.binary(min_size=1, max_size=32), min_size=1, max_size=4
        ),
        data=st.data(),
    )
    def test_every_proper_prefix_truncates(self, chunks, data):
        """Cut a chunked stream anywhere before its terminator and the
        reader must raise TruncatedResponse — silent short bodies are
        exactly the bug this PR fixes."""
        payload = b"".join(encode_chunk(c) for c in chunks) + encode_chunk(
            b""
        )
        cut = data.draw(st.integers(0, len(payload) - 1), label="cut")

        async def scenario():
            try:
                await _parse_chunked(payload[:cut], [])
            except TruncatedResponse:
                return True
            return False

        assert asyncio.run(scenario()) is True

    def test_empty_stream_is_truncated_not_empty_body(self):
        async def scenario():
            try:
                await _parse_chunked(b"", [])
            except TruncatedResponse:
                return True
            return False

        assert asyncio.run(scenario()) is True

    def test_terminator_alone_is_an_empty_body(self):
        body = asyncio.run(_parse_chunked(encode_chunk(b""), [0, 1, 2]))
        assert body == b""
