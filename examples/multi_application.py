#!/usr/bin/env python3
"""Multi-application scenario — the paper's future work (§VII), built.

Two independent applications (``sar`` and ``hf``) share the same eight
I/O nodes.  Their traces are merged into one co-scheduled workload, the
compiler schedules the union of their accesses, and the session runs both
side by side.  The question the paper poses — does software scheduling
still lengthen idle periods when applications interleave? — is answered
below.

Run:  python examples/multi_application.py
"""

from repro import CompilerOptions, Session, compile_schedule, make_policy
from repro.core import SlackOptions
from repro.experiments import default_config
from repro.ir import trace_program
from repro.metrics import fleet_energy, idle_cdf, idle_periods_until
from repro.storage import StripedFile, StripeMap
from repro.workloads import get_workload, merge_traces

SCALE = 0.12
PROCS_EACH = 16  # two 16-process apps share the 32 client nodes

config = default_config(scale=SCALE)

traces = []
for app in ("sar", "hf"):
    program = get_workload(app).build(n_processes=PROCS_EACH, scale=SCALE)
    traces.append(trace_program(program))
merged = merge_traces(traces, name="sar+hf")
print(
    f"merged workload: {merged.program.n_processes} processes, "
    f"{len(merged.program.files)} files, "
    f"{sum(len(p.ios) for p in merged.processes)} I/O calls"
)

stripe_map = StripeMap(config.stripe_size, config.n_ionodes)
striped = {
    name: StripedFile(name, decl.size_bytes)
    for name, decl in merged.program.files.items()
}
compiled = compile_schedule(
    merged.program,
    stripe_map,
    striped,
    CompilerOptions(
        delta=config.delta,
        theta=config.theta,
        slack=SlackOptions(max_slack=config.max_slack),
    ),
    trace=merged,
)
print(f"schedule: {compiled.stats()['moved']:.0f} of "
      f"{compiled.stats()['accesses']:.0f} accesses moved")


def run(with_scheme: bool):
    session = Session(
        merged,
        config.disk_spec(multispeed=True),
        lambda: make_policy("history"),
        config.session_config(),
        compile_result=compiled if with_scheme else None,
    )
    outcome = session.run()
    horizon = outcome.execution_time
    periods = [g for d in outcome.drives for g in idle_periods_until(d, horizon)]
    return (
        horizon,
        fleet_energy(outcome.drives, horizon),
        idle_cdf(periods),
    )


t_off, e_off, cdf_off = run(False)
t_on, e_on, cdf_on = run(True)

print("\n                      co-run, no scheme   co-run, scheduled")
print(f"execution time        {t_off:12.1f} s    {t_on:12.1f} s")
print(f"disk energy (history) {e_off:12.1f} J    {e_on:12.1f} J")
print(f"idle periods ≤1s      {cdf_off.fraction_at_most(1000):12.0%}"
      f"      {cdf_on.fraction_at_most(1000):12.0%}")
print(f"mean idle period      {cdf_off.mean_seconds:12.2f} s    "
      f"{cdf_on.mean_seconds:12.2f} s")
print(f"\nscheme effect on the co-run: {1 - e_on / e_off:.1%} energy saved")
