"""Disk power-management policies (paper §II).

Four evaluated policies — :class:`SimpleSpinDown`,
:class:`PredictionSpinDown`, :class:`HistoryBasedMultiSpeed`,
:class:`StaggeredMultiSpeed` — plus the :class:`NoPowerManagement`
baseline ("Default Scheme") and an oracle upper bound for ablations.
"""

from .multispeed import HistoryBasedMultiSpeed, StaggeredMultiSpeed, speed_for_idle
from .oracle import OracleSpinDown
from .policy import NoPowerManagement, PowerPolicy
from .predictor import IdlePredictor
from .spindown import PredictionSpinDown, SimpleSpinDown

__all__ = [
    "PowerPolicy",
    "NoPowerManagement",
    "SimpleSpinDown",
    "PredictionSpinDown",
    "HistoryBasedMultiSpeed",
    "StaggeredMultiSpeed",
    "OracleSpinDown",
    "IdlePredictor",
    "speed_for_idle",
]

POLICY_NAMES = ("default", "simple", "prediction", "history", "staggered")


def make_policy(name: str, **kwargs) -> PowerPolicy:
    """Factory: build a policy by its paper name.

    ``default`` | ``simple`` | ``prediction`` | ``history`` | ``staggered``.
    Keyword arguments are forwarded to the policy constructor.
    """
    factories = {
        "default": NoPowerManagement,
        "simple": SimpleSpinDown,
        "prediction": PredictionSpinDown,
        "history": HistoryBasedMultiSpeed,
        "staggered": StaggeredMultiSpeed,
    }
    if name not in factories:
        raise ValueError(f"unknown policy {name!r}; choose from {sorted(factories)}")
    return factories[name](**kwargs)
