"""Service-layer chaos: deterministic fault injection for the serving path.

The simulation has had seeded fault injection since PR 4; this module
points the same machinery at the *server itself*.  A
:class:`ChaosEngine` compiles the ``server.*`` events of a
:class:`~repro.faults.plan.FaultPlan` (see the taxonomy in
:mod:`repro.faults.plan`) and answers one question per injection point —
"does this fault fire now, and how hard?" — with draws from the same
named sha256-seeded streams the simulator uses
(:func:`repro.faults.injector.stream_rng`), one stream per fault kind.

Determinism contract: each kind owns its own stream, so the decision
sequence for (say) connection resets depends only on how many reset
*opportunities* the server has seen — never on how the other kinds
interleave.  Under a fixed request order the whole chaos schedule
replays exactly; ``count`` additionally bounds a kind to its first N
firings, which is what makes single-shot chaos tests deterministic
end to end.

Every firing is surfaced as a ``server.chaos.*`` counter in the
server's :class:`~repro.obs.metrics.MetricsRegistry`, so a chaos run is
attributable from ``/v1/metrics`` and ``repro report`` alone.

An **empty plan builds no engine at all** (:func:`chaos_engine` returns
``None``), and every injection point in the server is gated on the
engine's presence — the acceptance criterion is that a chaos-free server
is behaviorally identical to one that never heard of this module.
"""

from __future__ import annotations

from typing import Optional

from ..faults.injector import stream_rng
from ..faults.plan import SERVER_KINDS, FaultPlan
from ..obs.metrics import MetricsRegistry

__all__ = [
    "CHAOS_COUNTERS",
    "ChaosEngine",
    "chaos_engine",
]

#: Counter per fault kind, pre-registered (zeros included) so chaos-free
#: snapshots stay schema-stable and ``repro report`` always shows the
#: family.
CHAOS_COUNTERS = {
    "server.conn_reset": "server.chaos.conn_resets",
    "server.slow_loris": "server.chaos.slow_loris_stalls",
    "server.truncate_body": "server.chaos.truncated",
    "server.oversize_body": "server.chaos.oversized",
    "server.executor_death": "server.chaos.executor_deaths",
    "server.wal_stall": "server.chaos.wal_stalls",
}

#: Garbage appended to a response under ``server.oversize_body`` — large
#: enough to overflow any header buffer a naive client might reuse, and
#: guaranteed not to parse as an HTTP status line.
OVERSIZE_GARBAGE = b"\x00\xffGARBAGE" * 512


class _Arm:
    """One compiled server fault: probability draw + firing budget."""

    __slots__ = ("probability", "remaining", "extra_latency")

    def __init__(self, probability: float, count: int, extra_latency: float):
        self.probability = probability
        # count == 0 means unlimited (None sentinel).
        self.remaining: Optional[int] = count if count > 0 else None
        self.extra_latency = extra_latency


class ChaosEngine:
    """Compiled server-fault state: one armed draw stream per kind.

    Built once per server from the ``--chaos`` plan; all decision
    methods run on the event loop (single-threaded), so the draw order —
    and therefore the whole chaos schedule — is a pure function of the
    request/batch arrival order.
    """

    def __init__(self, plan: FaultPlan, metrics: MetricsRegistry):
        self._metrics = metrics
        self._arms: dict[str, list[_Arm]] = {}
        self._rngs = {
            kind: stream_rng(plan.seed, f"chaos:{kind}")
            for kind in sorted(SERVER_KINDS)
        }
        for event in plan.events:
            if event.kind in SERVER_KINDS:
                self._arms.setdefault(event.kind, []).append(
                    _Arm(event.probability, event.count, event.extra_latency)
                )

    def _fire(self, kind: str) -> Optional[_Arm]:
        """One opportunity for ``kind``: draw, decrement, count, return
        the arm that fired (or ``None``).

        Exactly one draw happens per armed opportunity regardless of the
        outcome, so exhausted budgets don't shift later decisions.
        """
        arms = self._arms.get(kind)
        if not arms:
            return None
        draw = self._rngs[kind].random()
        for arm in arms:
            if arm.remaining is not None and arm.remaining <= 0:
                continue
            if draw < arm.probability:
                if arm.remaining is not None:
                    arm.remaining -= 1
                self._metrics.counter(CHAOS_COUNTERS[kind]).inc()
                return arm
        return None

    # -- connection-level faults ---------------------------------------
    def connection_reset(self) -> bool:
        """Reset this connection mid-response?"""
        return self._fire("server.conn_reset") is not None

    def read_stall(self) -> float:
        """Seconds to stall before reading the next request (0 = none)."""
        arm = self._fire("server.slow_loris")
        return arm.extra_latency if arm is not None else 0.0

    def truncate_body(self) -> bool:
        """Cut this response body short of its declared length?"""
        return self._fire("server.truncate_body") is not None

    def oversize_body(self) -> bool:
        """Append garbage bytes beyond this response's declared length?"""
        return self._fire("server.oversize_body") is not None

    # -- batch/WAL faults ----------------------------------------------
    def executor_death(self) -> bool:
        """Kill the batch executor before this batch runs?"""
        return self._fire("server.executor_death") is not None

    def wal_stall(self) -> float:
        """Seconds to stall before this WAL append (0 = none)."""
        arm = self._fire("server.wal_stall")
        return arm.extra_latency if arm is not None else 0.0


def chaos_engine(
    plan: Optional[FaultPlan], metrics: MetricsRegistry
) -> Optional[ChaosEngine]:
    """Build an engine only when the plan actually arms server faults.

    ``None`` (no plan, or a plan without ``server.*`` events) is the
    chaos-free fast path: every server injection point is a single
    ``is None`` check, mirroring how the simulator treats untargeted
    components.
    """
    if plan is None:
        return None
    if not any(e.kind in SERVER_KINDS for e in plan.events):
        return None
    return ChaosEngine(plan, metrics)
