"""Discrete-event simulation kernel (AccuSim substitute).

Exports the pluggable kernels — the reference heap :class:`Simulator`,
the :class:`CalendarSimulator` bucketed-time queue and the hybrid
:class:`AnalyticSimulator` affine fast path — plus process/event
primitives and the :class:`StateTimeline` tracer used for power/idle
accounting.  Use :func:`make_kernel` to construct by registry name.
"""

from .analytic import AnalyticSimulator, phase_energy_bounds
from .calendar import CalendarSimulator
from .engine import SimProcess, Simulator
from .events import AllOf, AnyOf, ComputePhase, Event, Signal, Timeout
from .kernels import DEFAULT_KERNEL, KERNELS, kernel_names, make_kernel
from .trace import Interval, StateTimeline

__all__ = [
    "Simulator",
    "CalendarSimulator",
    "AnalyticSimulator",
    "SimProcess",
    "Event",
    "Timeout",
    "ComputePhase",
    "Signal",
    "AllOf",
    "AnyOf",
    "Interval",
    "StateTimeline",
    "KERNELS",
    "DEFAULT_KERNEL",
    "kernel_names",
    "make_kernel",
    "phase_energy_bounds",
]
