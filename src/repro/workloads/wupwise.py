"""``wupwise`` — lattice-QCD model (out-of-core SPEC wupwise).

Paper profile (Table III / Fig. 12(a)): the longest run of the suite
(39.8 min) with the largest data set (~446 GB in the paper), and the
*longest* idle periods — long BiCGStab compute stretches separate the
I/O bursts, so a visible fraction of idle periods reaches many seconds.

Structure modelled: epochs of a matrix-vector solver over lattice gauge
fields spilled to disk.  Each solver iteration reads two gauge-field
blocks, grinds through three long-ish compute slots (the mid-gap
population is wider than the other apps'), and writes one residual
block.  Each epoch ends with a **deflation stretch** — five ~110 s
eigensolver slots with one projector-block read apiece — plus a
four-block checkpoint burst.  Jittered costs leave the affine
(polyhedral) path available — dependences are functions of subscripts
only — while drifting processes smear bursts into a heavy idle tail.
"""

from __future__ import annotations

from ..ir.affine import var
from ..ir.program import Compute, FileDecl, Loop, Program, Read, Write
from .base import WorkloadInfo, jitter, register, scaled

__all__ = ["build"]

BLOCK_BYTES = 128 * 1024   # 2 stripes -> 2-node signatures (cf. Fig. 9)
EPOCHS = 2
ITERS_PER_EPOCH = 30
STRETCH_SLOTS = 5
ITER_SLOTS = 12          # fine compute slots per solver iteration
ITER_COST = 1.0          # seconds per fine compute slot
STRETCH_COST = 150.0


def build(n_processes: int = 32, scale: float = 1.0) -> Program:
    """Build the wupwise program.

    ``scale=1.0`` ⇒ ≈35 simulated minutes with 32 processes.
    """
    iters = scaled(ITERS_PER_EPOCH, scale)
    stretch_slots = scaled(STRETCH_SLOTS, scale, minimum=3)
    iters_total = EPOCHS * iters
    p = var("p")
    e = var("e")
    it = var("it")
    giter = e * iters + it

    files = {
        "gauge": FileDecl("gauge", 2 * n_processes * iters_total, BLOCK_BYTES),
        "residual": FileDecl("residual", n_processes * iters_total, BLOCK_BYTES),
        "projector": FileDecl(
            "projector", 5 * n_processes * EPOCHS * stretch_slots, BLOCK_BYTES
        ),
        "checkpoint": FileDecl(
            "checkpoint", 4 * n_processes * EPOCHS, BLOCK_BYTES
        ),
    }

    body = [
        Loop("e", 0, EPOCHS - 1, body=[
            Loop("it", 0, iters - 1, body=[
                Read("gauge", (p * iters_total + giter) * 2),
                Read("gauge", (p * iters_total + giter) * 2 + 1),
            ] + [
                Compute(jitter(ITER_COST, 0.07, k))
                for k in range(ITER_SLOTS // 2)
            ] + [
                Write("residual", p * iters_total + giter),
            ] + [
                Compute(jitter(ITER_COST, 0.07, 100 + k))
                for k in range(ITER_SLOTS - ITER_SLOTS // 2)
            ] + [
            ]),
            # Deflation stretch: runs of very long idle periods.
            Loop("ds", 0, stretch_slots - 1, body=[
                Read("projector",
                     (p + n_processes * (e * stretch_slots + var("ds"))) * 5),
                Compute(jitter(STRETCH_COST, 0.03, 24)),
            ]),
            # Checkpoint burst.
            Write("checkpoint", (p * EPOCHS + e) * 4),
            Write("checkpoint", (p * EPOCHS + e) * 4 + 1),
            Write("checkpoint", (p * EPOCHS + e) * 4 + 2),
            Write("checkpoint", (p * EPOCHS + e) * 4 + 3),
            Compute(jitter(1.0, 0.07, 25)),
        ]),
    ]
    return Program("wupwise", n_processes, files, body)


register(
    WorkloadInfo(
        name="wupwise",
        description="Lattice-QCD solver: wide mid gaps, deflation "
        "stretches with very long idles, checkpoint bursts",
        build=build,
        affine=True,
    )
)
