"""Workload infrastructure: registry, deterministic jitter, scaling.

Each of the six application models (Table III) exposes a ``build``
function returning a :class:`~repro.ir.program.Program`.  The models are
synthetic equivalents of the paper's applications: they reproduce the
*access-pattern structure* the framework consumes — blocked reads/writes
over striped files, producer→consumer chains, phase behaviour, and the
per-app idle-period character of Figure 12(a) — not the numerics.

``scale`` shrinks the phase counts (and hence slots, accesses and
simulated duration) proportionally so tests and benchmarks can run the
same code paths in seconds; ``scale=1.0`` approximates the paper's
execution-time magnitudes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

from ..ir.program import Program

__all__ = ["WorkloadInfo", "register", "get_workload", "all_workloads", "jitter"]


@dataclass(frozen=True)
class WorkloadInfo:
    """Registry entry for one application model."""

    name: str
    description: str
    build: Callable[..., Program]
    affine: bool  # which slack-extraction path the paper would use


_REGISTRY: dict[str, WorkloadInfo] = {}


def register(info: WorkloadInfo) -> WorkloadInfo:
    """Add a workload to the registry (idempotent per name)."""
    _REGISTRY[info.name] = info
    return info


def get_workload(name: str) -> WorkloadInfo:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def all_workloads() -> list[WorkloadInfo]:
    """All registered workloads, paper order."""
    order = ["hf", "sar", "astro", "apsi", "madbench2", "wupwise"]
    known = [
        _REGISTRY[name] for name in order if name in _REGISTRY
    ]
    extras = [info for name, info in sorted(_REGISTRY.items()) if name not in order]
    return known + extras


def jitter(base: float, amplitude: float, *keys: int) -> Callable[[dict], float]:
    """A deterministic per-(process, iteration) compute-cost callable.

    Returns ``base * (1 ± amplitude)`` keyed by a CRC of the given loop
    variable names' values plus any constants in ``keys`` — reproducible
    across runs, no global RNG.  The returned callable makes the owning
    program non-affine (profiling path), exactly like data-dependent
    compute in the real applications.
    """
    if amplitude < 0 or amplitude >= 1:
        raise ValueError(f"amplitude must be in [0, 1): {amplitude}")

    def cost(env: dict) -> float:
        material = ",".join(
            f"{k}={v}" for k, v in sorted(env.items()) if isinstance(v, int)
        )
        material += "|" + ",".join(str(k) for k in keys)
        h = zlib.crc32(material.encode()) / 0xFFFFFFFF  # [0, 1]
        return base * (1.0 + amplitude * (2.0 * h - 1.0))

    return cost


def scaled(count: int, scale: float, minimum: int = 2) -> int:
    """Scale an iteration count, keeping at least ``minimum``."""
    return max(minimum, int(round(count * scale)))
